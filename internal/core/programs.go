package core

import (
	"strconv"
	"strings"

	"procmig/internal/aout"
	"procmig/internal/errno"
	"procmig/internal/kernel"
	"procmig/internal/sim"
	"procmig/internal/vfs"
)

// Program names the cluster registers (they appear in /bin).
const (
	ProgDumpproc = "dumpproc"
	ProgRestart  = "restart"
	ProgMigrate  = "migrate"
	ProgUndump   = "undump"
)

// Dumpproc poll policy: the paper's dumpproc "simply sleeps for one second
// after each unsuccessful attempt to open a.outXXXXX (aborting after ten
// tries)". The A3 ablation sweeps the interval and tries exponential
// backoff instead.
var (
	PollInterval sim.Duration = sim.Second
	PollBackoff  bool
)

// Programs returns the user-level migration commands for registration.
func Programs() map[string]kernel.HostedProg {
	return map[string]kernel.HostedProg{
		ProgDumpproc: DumpprocMain,
		ProgRestart:  RestartMain,
		ProgMigrate:  MigrateMain,
		ProgUndump:   UndumpMain,
	}
}

// --- small libc -------------------------------------------------------------

// eprint writes a diagnostic to stderr, best-effort.
func eprint(sys *kernel.Sys, msg string) {
	sys.Write(2, []byte(msg+"\n"))
}

// ReadAll reads a whole file through the syscall interface — a user-level
// helper shared by the migration commands and the §8 applications.
func ReadAll(sys *kernel.Sys, path string) ([]byte, errno.Errno) {
	fd, e := sys.Open(path, kernel.O_RDONLY)
	if e != 0 {
		return nil, e
	}
	defer sys.Close(fd)
	var out []byte
	for {
		chunk, e := sys.Read(fd, 8192)
		if e != 0 {
			return nil, e
		}
		if len(chunk) == 0 {
			return out, 0
		}
		out = append(out, chunk...)
	}
}

// WriteAll creates path and writes data through the syscall interface.
func WriteAll(sys *kernel.Sys, path string, data []byte, mode uint16) errno.Errno {
	fd, e := sys.Creat(path, mode)
	if e != 0 {
		return e
	}
	defer sys.Close(fd)
	if _, e := sys.Write(fd, data); e != 0 {
		return e
	}
	return 0
}

// resolveLinks resolves every symbolic link in path by iterating
// readlink(), as §4.3 prescribes, entirely at user level.
func resolveLinks(sys *kernel.Sys, path string) (string, errno.Errno) {
	comps := splitPath(path)
	cur := "/"
	budget := 20
	for i := 0; i < len(comps); {
		c := comps[i]
		switch c {
		case ".", "":
			i++
			continue
		case "..":
			cur = parentDir(cur)
			i++
			continue
		}
		next := joinDir(cur, c)
		attr, e := sys.Lstat(next)
		if e != 0 {
			return "", e
		}
		if attr.Type == vfs.TypeSymlink {
			budget--
			if budget < 0 {
				return "", errno.ELOOP
			}
			target, e := sys.Readlink(next)
			if e != 0 {
				return "", e
			}
			rest := comps[i+1:]
			comps = append(splitPath(target), rest...)
			i = 0
			if strings.HasPrefix(target, "/") {
				cur = "/"
			}
			continue
		}
		cur = next
		i++
	}
	return cur, 0
}

func splitPath(p string) []string {
	var out []string
	for _, c := range strings.Split(p, "/") {
		if c != "" {
			out = append(out, c)
		}
	}
	return out
}

func joinDir(dir, name string) string {
	if dir == "/" {
		return "/" + name
	}
	return dir + "/" + name
}

func parentDir(p string) string {
	i := strings.LastIndex(p, "/")
	if i <= 0 {
		return "/"
	}
	return p[:i]
}

// isTerminal reports whether path names a terminal, detected the classic
// way: open it and see whether the tty ioctl succeeds.
func isTerminal(sys *kernel.Sys, path string) bool {
	fd, e := sys.Open(path, kernel.O_RDONLY)
	if e != 0 {
		return false
	}
	defer sys.Close(fd)
	_, e = sys.Gtty(fd)
	return e == 0
}

// --- dumpproc ----------------------------------------------------------------

// DumpprocMain implements the dumpproc command (§4.1, §4.4): kill the
// process with SIGDUMP, then rewrite the filesXXXXX file so that its
// pathnames work from any machine — resolve symlinks, map terminals to
// /dev/tty, and prepend /n/<machinename> to local names.
func DumpprocMain(sys *kernel.Sys, args []string) int {
	flags := ParseFlags(args[1:])
	pid, err := strconv.Atoi(flags["p"])
	if err != nil || pid <= 0 {
		eprint(sys, "usage: dumpproc -p pid")
		return 2
	}

	// Kill the specified process with a SIGDUMP signal. (Only the
	// superuser or the owner may do this; the kernel enforces it.)
	if e := sys.Kill(pid, kernel.SIGDUMP); e != 0 {
		eprint(sys, "dumpproc: kill: "+e.Error())
		return 1
	}

	// The dump files are created by the process being dumped, so wait for
	// the kernel to schedule it: sleep one second after each unsuccessful
	// attempt to open a.outXXXXX, aborting after ten tries (§6.2). The
	// sleep policy is a package variable so the A3 ablation can sweep it.
	aoutPath, filesPath, _ := DumpPaths("", pid)
	opened := false
	wait := PollInterval
	for try := 0; try < 10; try++ {
		fd, e := sys.Open(aoutPath, kernel.O_RDONLY)
		if e == 0 {
			sys.Close(fd)
			opened = true
			break
		}
		sys.Sleep(wait)
		if PollBackoff {
			wait *= 2
		}
	}
	if !opened {
		eprint(sys, "dumpproc: dump files never appeared")
		return 1
	}

	// Read in the files file.
	raw, e := ReadAll(sys, filesPath)
	if e != 0 {
		eprint(sys, "dumpproc: read "+filesPath+": "+e.Error())
		return 1
	}
	ff, derr := DecodeFiles(raw)
	if derr != nil {
		eprint(sys, "dumpproc: "+derr.Error())
		return 1
	}

	host := sys.Gethostname()
	fix := func(path string) string {
		if path == "" {
			return path
		}
		// Resolve symbolic links.
		resolved, e := resolveLinks(sys, path)
		if e != 0 {
			resolved = path // keep the lexical name; restart will cope
		}
		// If the name points to a terminal, change it to /dev/tty so it
		// points at the current terminal of the process that reopens it.
		if isTerminal(sys, resolved) {
			return "/dev/tty"
		}
		// Otherwise, if the file is local to this machine, prepend
		// /n/<machinename>.
		if !strings.HasPrefix(resolved, "/n/") {
			return "/n/" + host + resolved
		}
		return resolved
	}

	ff.CWD = fix(ff.CWD)
	for i := range ff.FDs {
		if ff.FDs[i].Kind == FDFile {
			ff.FDs[i].Path = fix(ff.FDs[i].Path)
		}
	}

	// Overwrite the modified information on the files file.
	if e := WriteAll(sys, filesPath, ff.Encode(), 0o700); e != 0 {
		eprint(sys, "dumpproc: rewrite "+filesPath+": "+e.Error())
		return 1
	}
	return 0
}

// --- restart -----------------------------------------------------------------

// RestartMain implements the restart command (§4.1, §4.4): verify the dump
// files, assume the old credentials, restore the working directory, reopen
// every descriptor in order (null device for sockets and missing files,
// the terminal for unreopenable stdio), restore the terminal modes, and
// call rest_proc.
func RestartMain(sys *kernel.Sys, args []string) int {
	flags := ParseFlags(args[1:])
	pid, err := strconv.Atoi(flags["p"])
	if err != nil || pid <= 0 {
		eprint(sys, "usage: restart -p pid [-h host]")
		return 2
	}
	host := flags["h"]
	local := sys.Gethostname()
	if host == "" {
		host = local
	}
	prefix := ""
	if host != local {
		prefix = "/n/" + host
	}
	aoutPath, filesPath, stackPath := DumpPaths(prefix, pid)

	// Verify that the three files exist and have the correct format by
	// checking their magic numbers.
	filesRaw, e := ReadAll(sys, filesPath)
	if e != 0 {
		eprint(sys, "restart: "+filesPath+": "+e.Error())
		return 1
	}
	ff, derr := DecodeFiles(filesRaw)
	if derr != nil {
		eprint(sys, "restart: "+derr.Error())
		return 1
	}
	stackRaw, e := ReadAll(sys, stackPath)
	if e != 0 {
		eprint(sys, "restart: "+stackPath+": "+e.Error())
		return 1
	}
	creds, _, derr := DecodeStackHeader(stackRaw)
	if derr != nil {
		eprint(sys, "restart: "+derr.Error())
		return 1
	}
	if attr, e := sys.Stat(aoutPath); e != 0 || attr.Size == 0 {
		eprint(sys, "restart: bad a.out dump")
		return 1
	}

	// Read the old user credentials and establish them as our own. Only
	// the owner of the original process or the superuser gets past this.
	if e := sys.Setreuid(creds.UID, creds.EUID); e != 0 {
		eprint(sys, "restart: setreuid: "+e.Error())
		return 1
	}

	// Establish the old current working directory.
	if e := sys.Chdir(ff.CWD); e != 0 {
		eprint(sys, "restart: chdir "+ff.CWD+": "+e.Error())
		return 1
	}

	// Reopen every file with the correct access modes and offset,
	// assigning the same file numbers they had. The null device stands in
	// for sockets, unused slots (to preserve ordering) and unreopenable
	// files — except stdio, which falls back to the terminal so the user
	// keeps some control over the restarted program.
	var placeholder [kernel.NOFILE]bool
	for fd := 0; fd < kernel.NOFILE; fd++ {
		sys.Close(fd) // free the slot (our own stdio included)
		ent := ff.FDs[fd]
		var got int
		var oe errno.Errno
		switch ent.Kind {
		case FDFile:
			got, oe = sys.Open(ent.Path, int(ent.Flags))
			if oe == 0 {
				// Position at the dumped offset (devices don't seek).
				sys.Lseek(got, int64(ent.Offset), kernel.SeekSet)
			} else {
				if fd <= 2 {
					got, oe = sys.Open("/dev/tty", kernel.O_RDWR)
				}
				if oe != 0 {
					got, oe = sys.Open("/dev/null", kernel.O_RDWR)
				}
			}
		case FDSocketBound:
			// Extension: re-create the socket, bind the old port here,
			// and have the old machine forward datagrams. On any failure
			// fall back to the paper's null device.
			got, oe = sys.Socket()
			if oe == 0 {
				if be := sys.Bind(got, int(ent.Port)); be != 0 {
					sys.Close(got)
					got, oe = sys.Open("/dev/null", kernel.O_RDWR)
				} else {
					sys.RequestForward(ff.Host, int(ent.Port))
				}
			}
		default: // FDUnused, FDSocket
			got, oe = sys.Open("/dev/null", kernel.O_RDWR)
			if ent.Kind == FDUnused {
				placeholder[fd] = true
			}
		}
		if oe != 0 || got != fd {
			eprint(sys, "restart: descriptor table rebuild failed")
			return 1
		}
	}
	// Close the files that were only opened to preserve the order of the
	// file numbers.
	for fd, ph := range placeholder {
		if ph {
			sys.Close(fd)
		}
	}

	// Set the current terminal's modes to those of the original process.
	if ttyfd, e := sys.Open("/dev/tty", kernel.O_RDWR); e == 0 {
		sys.Stty(ttyfd, ff.TTY)
		sys.Close(ttyfd)
	}

	// Restart the old program. No return on success.
	e = sys.RestProc(aoutPath, stackPath)
	eprint(sys, "restart: rest_proc: "+e.Error())
	return 1
}

// --- migrate -----------------------------------------------------------------

// MigrateMain implements the migrate command (§4.1): dumpproc on the source
// host and restart on the destination, glued together — via rsh when
// either end is remote, which is where all of Figure 4's overhead lives.
func MigrateMain(sys *kernel.Sys, args []string) int {
	flags := ParseFlags(args[1:])
	pidStr := flags["p"]
	if _, err := strconv.Atoi(pidStr); err != nil {
		eprint(sys, "usage: migrate -p pid [-f fromhost] [-t tohost]")
		return 2
	}
	local := sys.Gethostname()
	from := flags["f"]
	if from == "" {
		from = local
	}
	to := flags["t"]
	if to == "" {
		to = local
	}

	// runLocal executes a command as a child. isRestart selects the wait
	// that treats a successful rest_proc overlay as completion (a restart
	// that succeeds never exits — it has become the migrated process).
	runLocal := func(isRestart bool, path string, cargs ...string) int {
		pid, e := sys.Spawn(path, append([]string{path}, cargs...), nil)
		if e != 0 {
			eprint(sys, "migrate: exec "+path+": "+e.Error())
			return -1
		}
		if isRestart {
			status, e := sys.WaitRestarted(pid)
			if e != 0 {
				return -1
			}
			return status
		}
		for {
			rp, status, e := sys.Wait()
			if e != 0 {
				return -1
			}
			if rp == pid {
				return status >> 8
			}
		}
	}
	runOn := func(host string, isRestart bool, cmd string, cargs ...string) int {
		if host == local {
			return runLocal(isRestart, "/bin/"+cmd, cargs...)
		}
		// rshd applies the same completed-or-migrated rule remotely.
		return runLocal(false, "/bin/rsh", append([]string{host, cmd}, cargs...)...)
	}

	if st := runOn(from, false, ProgDumpproc, "-p", pidStr); st != 0 {
		eprint(sys, "migrate: dumpproc failed")
		return 1
	}
	if st := runOn(to, true, ProgRestart, "-p", pidStr, "-h", from); st != 0 {
		eprint(sys, "migrate: restart failed")
		return 1
	}
	return 0
}

// --- undump ------------------------------------------------------------------

// UndumpMain implements the undump utility the paper notes comes for free:
// combine an executable with a core dump from a run of it, producing an
// executable whose statics are initialised to their values at dump time.
// Usage: undump a.out core newfile.
func UndumpMain(sys *kernel.Sys, args []string) int {
	if len(args) != 4 {
		eprint(sys, "usage: undump a.out core newfile")
		return 2
	}
	exeRaw, e := ReadAll(sys, args[1])
	if e != 0 {
		eprint(sys, "undump: "+args[1]+": "+e.Error())
		return 1
	}
	exe, err := aout.Decode(exeRaw)
	if err != nil {
		eprint(sys, "undump: "+err.Error())
		return 1
	}
	coreRaw, e := ReadAll(sys, args[2])
	if e != 0 {
		eprint(sys, "undump: "+args[2]+": "+e.Error())
		return 1
	}
	core, err := aout.DecodeCore(coreRaw)
	if err != nil {
		eprint(sys, "undump: "+err.Error())
		return 1
	}
	merged, err := aout.Undump(exe, core)
	if err != nil {
		eprint(sys, "undump: "+err.Error())
		return 1
	}
	if e := WriteAll(sys, args[3], merged.Encode(), 0o755); e != 0 {
		eprint(sys, "undump: write: "+e.Error())
		return 1
	}
	return 0
}
