package obs

import (
	"fmt"
	"math/rand"
	"testing"

	"procmig/internal/sim"
)

// Every value must land in a bucket whose upper bound is >= the value and
// within the scheme's relative error (1/32 above the linear region).
func TestHDRIndexBounds(t *testing.T) {
	vals := []int64{0, 1, 31, 32, 33, 63, 64, 67, 100, 1000, 12345,
		1 << 20, (1 << 40) + 12345, 1 << 62, -5}
	for _, v := range vals {
		i := hdrIndex(v)
		if i < 0 || i >= hdrBuckets {
			t.Fatalf("index(%d) = %d out of range", v, i)
		}
		u := hdrUpper(i)
		vv := v
		if vv < 0 {
			vv = 0
		}
		if u < vv {
			t.Fatalf("upper(%d)=%d below value %d", i, u, vv)
		}
		if vv >= 32 && float64(u-vv) > float64(vv)/16 {
			t.Fatalf("upper(%d)=%d too far above %d (rel err %f)", i, u, vv, float64(u-vv)/float64(vv))
		}
	}
	// Index is monotone over bucket upper bounds and upper() inverts index().
	for i := 0; i < hdrBuckets-1; i++ {
		if hdrIndex(hdrUpper(i)) != i {
			t.Fatalf("index(upper(%d)) = %d", i, hdrIndex(hdrUpper(i)))
		}
		if hdrUpper(i) >= hdrUpper(i+1) {
			t.Fatalf("upper not increasing at %d: %d >= %d", i, hdrUpper(i), hdrUpper(i+1))
		}
	}
}

func TestHDRQuantiles(t *testing.T) {
	var h HDR
	if h.P99() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report 0")
	}
	// 1..1000: quantiles must bracket the exact rank within 1/16 relative.
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	checks := []struct {
		q     float64
		exact int64
	}{{0.5, 500}, {0.99, 990}, {0.999, 999}, {1.0, 1000}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.exact || float64(got-c.exact) > float64(c.exact)/16+1 {
			t.Fatalf("q%.3f = %d, want within [%d, %d+6%%]", c.q, got, c.exact, c.exact)
		}
	}
	if h.Max() != 1000 || h.Count() != 1000 || h.Sum() != 1000*1001/2 {
		t.Fatalf("count/sum/max = %d/%d/%d", h.Count(), h.Sum(), h.Max())
	}
	// Quantile never exceeds the observed max even deep in a wide bucket.
	var one HDR
	one.Observe(1 << 40)
	if one.P999() != 1<<40 {
		t.Fatalf("single-value p999 = %d, want %d", one.P999(), int64(1)<<40)
	}
}

// Merging two histograms must equal observing the union directly.
func TestHDRMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a, b, union HDR
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(1 << 30)
		union.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(&b)
	if a != union {
		t.Fatal("merge(a,b) != union histogram")
	}
	a.Merge(nil) // must not panic
}

func TestWindowedHDRSeries(t *testing.T) {
	w := NewWindowedHDR(sim.Duration(10))
	// Two observations in window [0,10), one in [20,30): the empty window
	// [10,20) must not produce a point.
	w.Observe(sim.Time(3), 100)
	w.Observe(sim.Time(7), 200)
	w.Observe(sim.Time(25), 300)
	if got := len(w.Series()); got != 1 {
		t.Fatalf("%d sealed windows before Seal, want 1", got)
	}
	w.Seal()
	pts := w.Series()
	if len(pts) != 2 {
		t.Fatalf("%d sealed windows, want 2", len(pts))
	}
	if pts[0].Start != 0 || pts[0].N != 2 || pts[0].Max != 200 {
		t.Fatalf("window 0 = %+v", pts[0])
	}
	if pts[1].Start != 20 || pts[1].N != 1 {
		t.Fatalf("window 1 = %+v", pts[1])
	}
	if w.Total().Count() != 3 || w.Total().Max() != 300 {
		t.Fatalf("total = %+v", w.Total())
	}
}

// The per-observation path must stay allocation-free in steady state — the
// load generator calls it once per completed request.
func TestHDRObserveAllocs(t *testing.T) {
	var h HDR
	if n := testing.AllocsPerRun(1000, func() { h.Observe(123456) }); n != 0 {
		t.Fatalf("HDR.Observe allocates %.1f/op, want 0", n)
	}
	w := NewWindowedHDR(sim.Second)
	now := sim.Time(0)
	if n := testing.AllocsPerRun(1000, func() {
		w.Observe(now, 5000)
		now += 100
	}); n != 0 {
		t.Fatalf("WindowedHDR.Observe allocates %.1f/op, want 0", n)
	}
}

func TestSnapshotAndTotalsMergeHDR(t *testing.T) {
	reg := NewRegistry()
	wa := reg.Scope("alpha").Windowed("load.latency_us", sim.Second)
	wb := reg.Scope("beta").Windowed("load.latency_us", sim.Second)
	for i := 0; i < 100; i++ {
		wa.Observe(sim.Time(i), 100)
		wb.Observe(sim.Time(i), 1_000_000)
	}
	if again := reg.Scope("alpha").Windowed("load.latency_us", sim.Second); again != wa {
		t.Fatal("get-or-create returned a different windowed histogram")
	}
	var snap *Row
	for _, row := range reg.Snapshot() {
		if row.Host == "alpha" && row.Name == "load.latency_us" {
			r := row
			snap = &r
		}
	}
	if snap == nil || snap.Detail == "" {
		t.Fatalf("windowed histogram missing from snapshot: %+v", snap)
	}
	var tot *Row
	for _, row := range reg.Totals() {
		if row.Name == "load.latency_us" {
			r := row
			tot = &r
		}
	}
	if tot == nil {
		t.Fatal("windowed histogram missing from totals")
	}
	// The merged p50 must be alpha's value and merged p99 beta's — only a
	// true bucket-wise merge gets both right.
	merged := &HDR{}
	merged.Merge(wa.Total())
	merged.Merge(wb.Total())
	if merged.Count() != 200 {
		t.Fatalf("merged count = %d", merged.Count())
	}
	if p50 := merged.P50(); p50 > 200 {
		t.Fatalf("merged p50 = %d, want ~100", p50)
	}
	if p99 := merged.P99(); p99 < 900_000 {
		t.Fatalf("merged p99 = %d, want ~1e6", p99)
	}
	wantDetail := merged.Summary()
	if tot.Detail != wantDetail {
		t.Fatalf("totals detail = %q, want %q", tot.Detail, wantDetail)
	}
	// Fixed-bucket histograms merge across hosts too.
	reg.Scope("alpha").Histogram("x.hist", LatencyBuckets).Observe(50)
	reg.Scope("beta").Histogram("x.hist", LatencyBuckets).Observe(5_000_000)
	for _, row := range reg.Totals() {
		if row.Name == "x.hist" {
			if row.Value != 5_000_050 {
				t.Fatalf("merged hist sum = %d", row.Value)
			}
			if row.Detail != "n=2 <=100:1 <=10000000:1" {
				t.Fatalf("merged hist detail = %q", row.Detail)
			}
			return
		}
	}
	t.Fatal("fixed histogram missing from totals")
}

func TestHDRSummaryFormat(t *testing.T) {
	var h HDR
	h.Observe(10)
	h.Observe(20)
	want := fmt.Sprintf("n=2 p50=%d p99=%d p999=%d max=20", h.P50(), h.P99(), h.P999())
	if h.Summary() != want {
		t.Fatalf("summary = %q", h.Summary())
	}
}
