package vfs

import (
	"strings"
	"testing"
	"testing/quick"

	"procmig/internal/errno"
)

func newTestNS(t *testing.T) *Namespace {
	t.Helper()
	ns := NewNamespace(NewMemFS())
	for _, d := range []string{"/usr/tmp", "/dev", "/etc", "/u"} {
		if err := ns.MkdirAll(d, 0o755, 0, 0); err != nil {
			t.Fatalf("mkdir %s: %v", d, err)
		}
	}
	return ns
}

func TestCreateWriteRead(t *testing.T) {
	ns := newTestNS(t)
	if err := ns.WriteFile("/etc/motd", []byte("hello world"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	data, err := ns.ReadFile("/etc/motd")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello world" {
		t.Fatalf("data = %q", data)
	}
	attr, err := ns.Stat("/etc/motd")
	if err != nil {
		t.Fatal(err)
	}
	if attr.Type != TypeFile || attr.Size != 11 || attr.Mode != 0o644 {
		t.Fatalf("attr = %+v", attr)
	}
}

func TestWriteFileTruncatesExisting(t *testing.T) {
	ns := newTestNS(t)
	must(t, ns.WriteFile("/f", []byte("long content here"), 0o644, 0, 0))
	must(t, ns.WriteFile("/f", []byte("x"), 0o644, 0, 0))
	data, err := ns.ReadFile("/f")
	if err != nil || string(data) != "x" {
		t.Fatalf("data = %q err = %v", data, err)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestLookupDotDot(t *testing.T) {
	ns := newTestNS(t)
	must(t, ns.WriteFile("/etc/passwd", []byte("root"), 0o644, 0, 0))
	data, err := ns.ReadFile("/usr/../etc/./passwd")
	if err != nil || string(data) != "root" {
		t.Fatalf("data = %q err = %v", data, err)
	}
	// ".." above root stays at root.
	if _, err := ns.Resolve("/../../etc", true); err != nil {
		t.Fatalf("resolve above root: %v", err)
	}
}

func TestEnoent(t *testing.T) {
	ns := newTestNS(t)
	if _, err := ns.ReadFile("/no/such/file"); errno.Of(err) != errno.ENOENT {
		t.Fatalf("err = %v, want ENOENT", err)
	}
}

func TestNotDir(t *testing.T) {
	ns := newTestNS(t)
	must(t, ns.WriteFile("/plain", []byte("x"), 0o644, 0, 0))
	if _, err := ns.Resolve("/plain/sub", true); errno.Of(err) != errno.ENOTDIR {
		t.Fatalf("err = %v, want ENOTDIR", err)
	}
}

func TestSymlinkFollow(t *testing.T) {
	ns := newTestNS(t)
	must(t, ns.WriteFile("/etc/real", []byte("data"), 0o644, 0, 0))
	must(t, ns.Symlink("/etc/link", "/etc/real", 0, 0))
	data, err := ns.ReadFile("/etc/link")
	if err != nil || string(data) != "data" {
		t.Fatalf("data = %q err = %v", data, err)
	}
	// Lstat sees the link itself, Stat follows.
	la, err := ns.Lstat("/etc/link")
	must(t, err)
	if la.Type != TypeSymlink {
		t.Fatalf("lstat type = %v", la.Type)
	}
	sa, err := ns.Stat("/etc/link")
	must(t, err)
	if sa.Type != TypeFile {
		t.Fatalf("stat type = %v", sa.Type)
	}
}

func TestSymlinkRelative(t *testing.T) {
	ns := newTestNS(t)
	must(t, ns.WriteFile("/etc/real", []byte("rel"), 0o644, 0, 0))
	must(t, ns.Symlink("/etc/rl", "real", 0, 0))
	data, err := ns.ReadFile("/etc/rl")
	if err != nil || string(data) != "rel" {
		t.Fatalf("data = %q err = %v", data, err)
	}
	must(t, ns.Symlink("/usr/up", "../etc/real", 0, 0))
	data, err = ns.ReadFile("/usr/up")
	if err != nil || string(data) != "rel" {
		t.Fatalf("up: data = %q err = %v", data, err)
	}
}

func TestSymlinkChainAndLoop(t *testing.T) {
	ns := newTestNS(t)
	must(t, ns.WriteFile("/end", []byte("e"), 0o644, 0, 0))
	must(t, ns.Symlink("/a", "/b", 0, 0))
	must(t, ns.Symlink("/b", "/end", 0, 0))
	if _, err := ns.ReadFile("/a"); err != nil {
		t.Fatalf("chain: %v", err)
	}
	must(t, ns.Symlink("/loop1", "/loop2", 0, 0))
	must(t, ns.Symlink("/loop2", "/loop1", 0, 0))
	if _, err := ns.ReadFile("/loop1"); errno.Of(err) != errno.ELOOP {
		t.Fatalf("loop err = %v, want ELOOP", err)
	}
}

func TestSymlinkInMiddleOfPath(t *testing.T) {
	ns := newTestNS(t)
	must(t, ns.MkdirAll("/n/brador/u2/user", 0o755, 0, 0))
	must(t, ns.WriteFile("/n/brador/u2/user/f", []byte("homedir"), 0o644, 0, 0))
	// The paper's /u/user convention: a symlink to a file-server directory.
	must(t, ns.Symlink("/u/user", "/n/brador/u2/user", 0, 0))
	data, err := ns.ReadFile("/u/user/f")
	if err != nil || string(data) != "homedir" {
		t.Fatalf("data = %q err = %v", data, err)
	}
	// The canonical path has the link resolved.
	p, err := ns.Resolve("/u/user/f", true)
	must(t, err)
	if p.Canon != "/n/brador/u2/user/f" {
		t.Fatalf("canon = %q", p.Canon)
	}
}

func TestMountCrossing(t *testing.T) {
	ns := newTestNS(t)
	remote := NewMemFS()
	rns := NewNamespace(remote)
	must(t, rns.MkdirAll("/usr", 0o755, 0, 0))
	must(t, rns.WriteFile("/usr/foo", []byte("remote file"), 0o644, 0, 0))

	must(t, ns.MkdirAll("/n/classic", 0o755, 0, 0))
	must(t, ns.Mount("/n/classic", remote))

	data, err := ns.ReadFile("/n/classic/usr/foo")
	if err != nil || string(data) != "remote file" {
		t.Fatalf("data = %q err = %v", data, err)
	}
	// ".." out of the mount root lands back at /n.
	p, err := ns.Resolve("/n/classic/..", true)
	must(t, err)
	if p.Canon != "/n" {
		t.Fatalf("canon = %q", p.Canon)
	}
}

// TestPaperSymlinkTrap reproduces §4.3's scenario: on classic, /usr is a
// symlink to /n/brador/usr. Reaching the file through /n/classic/usr/foo
// must fail (the absolute link target resolves inside classic's exported
// disk, where /n/brador is an empty mount-point directory), while the
// symlink-resolved name /n/brador/usr/foo works.
func TestPaperSymlinkTrap(t *testing.T) {
	// brador: the file server, holding the real /usr.
	brador := NewMemFS()
	bns := NewNamespace(brador)
	must(t, bns.MkdirAll("/usr", 0o755, 0, 0))
	must(t, bns.WriteFile("/usr/foo", []byte("the real foo"), 0o644, 0, 0))

	// classic: /usr -> /n/brador/usr (a symlink on its local disk), and an
	// empty /n/brador directory that is only a mount *point*.
	classic := NewMemFS()
	cns := NewNamespace(classic)
	must(t, cns.MkdirAll("/n/brador", 0o755, 0, 0))
	must(t, cns.Symlink("/usr", "/n/brador/usr", 0, 0))
	must(t, cns.Mount("/n/brador", brador))

	// On classic itself the symlink works (mount crossing applies).
	data, err := cns.ReadFile("/usr/foo")
	if err != nil || string(data) != "the real foo" {
		t.Fatalf("on classic: data = %q err = %v", data, err)
	}

	// schooner mounts both machines' disks.
	schooner := NewMemFS()
	sns := NewNamespace(schooner)
	must(t, sns.MkdirAll("/n/classic", 0o755, 0, 0))
	must(t, sns.MkdirAll("/n/brador", 0o755, 0, 0))
	must(t, sns.Mount("/n/classic", classic))
	must(t, sns.Mount("/n/brador", brador))

	// Naive prepend: /n/classic/usr/foo. The symlink inside classic's disk
	// points at /n/brador/usr, which within classic's exported tree is an
	// empty directory — ENOENT, as the paper observes.
	if _, err := sns.ReadFile("/n/classic/usr/foo"); errno.Of(err) != errno.ENOENT {
		t.Fatalf("naive prepend: err = %v, want ENOENT", err)
	}

	// Resolving the symlink first (what dumpproc does) gives a name that
	// works from anywhere.
	data, err = sns.ReadFile("/n/brador/usr/foo")
	if err != nil || string(data) != "the real foo" {
		t.Fatalf("resolved name: data = %q err = %v", data, err)
	}
}

func TestRemove(t *testing.T) {
	ns := newTestNS(t)
	must(t, ns.WriteFile("/f", []byte("x"), 0o644, 0, 0))
	must(t, ns.Remove("/f"))
	if _, err := ns.ReadFile("/f"); errno.Of(err) != errno.ENOENT {
		t.Fatalf("err = %v", err)
	}
	// Non-empty directory refuses.
	must(t, ns.WriteFile("/etc/x", []byte("x"), 0o644, 0, 0))
	if err := ns.Remove("/etc"); errno.Of(err) != errno.ENOTEMPTY {
		t.Fatalf("err = %v, want ENOTEMPTY", err)
	}
}

func TestRename(t *testing.T) {
	ns := newTestNS(t)
	must(t, ns.WriteFile("/a", []byte("content"), 0o644, 0, 0))
	dir, base, err := ns.ResolveParent("/a")
	must(t, err)
	tmp, err := ns.Resolve("/usr/tmp", true)
	must(t, err)
	must(t, dir.FS.Rename(dir.Node, base, tmp.Node, "b"))
	data, err := ns.ReadFile("/usr/tmp/b")
	if err != nil || string(data) != "content" {
		t.Fatalf("data = %q err = %v", data, err)
	}
	if _, err := ns.ReadFile("/a"); errno.Of(err) != errno.ENOENT {
		t.Fatalf("old name: err = %v", err)
	}
}

func TestReadDirSorted(t *testing.T) {
	ns := newTestNS(t)
	for _, f := range []string{"/etc/zz", "/etc/aa", "/etc/mm"} {
		must(t, ns.WriteFile(f, nil, 0o644, 0, 0))
	}
	p, err := ns.Resolve("/etc", true)
	must(t, err)
	ents, err := p.FS.ReadDir(p.Node)
	must(t, err)
	var names []string
	for _, e := range ents {
		names = append(names, e.Name)
	}
	if strings.Join(names, ",") != "aa,mm,zz" {
		t.Fatalf("names = %v", names)
	}
}

func TestDeviceNodes(t *testing.T) {
	ns := newTestNS(t)
	dir, base, err := ns.ResolveParent("/dev/null")
	must(t, err)
	if _, err := dir.FS.Mknod(dir.Node, base, DevID(3), 0o666, 0, 0); err != nil {
		t.Fatal(err)
	}
	attr, err := ns.Stat("/dev/null")
	must(t, err)
	if attr.Type != TypeDev || attr.Dev != DevID(3) {
		t.Fatalf("attr = %+v", attr)
	}
}

func TestWriteAtSparseAndTruncate(t *testing.T) {
	ns := newTestNS(t)
	must(t, ns.WriteFile("/f", []byte("abc"), 0o644, 0, 0))
	p, err := ns.Resolve("/f", true)
	must(t, err)
	if _, err := p.FS.WriteAt(p.Node, 6, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	data, _ := ns.ReadFile("/f")
	if string(data) != "abc\x00\x00\x00xyz" {
		t.Fatalf("data = %q", data)
	}
	must(t, p.FS.Truncate(p.Node, 2))
	data, _ = ns.ReadFile("/f")
	if string(data) != "ab" {
		t.Fatalf("after truncate: %q", data)
	}
	must(t, p.FS.Truncate(p.Node, 4))
	data, _ = ns.ReadFile("/f")
	if string(data) != "ab\x00\x00" {
		t.Fatalf("after grow: %q", data)
	}
}

func TestReadAtPastEOF(t *testing.T) {
	ns := newTestNS(t)
	must(t, ns.WriteFile("/f", []byte("abc"), 0o644, 0, 0))
	p, _ := ns.Resolve("/f", true)
	data, err := p.FS.ReadAt(p.Node, 100, 10)
	if err != nil || len(data) != 0 {
		t.Fatalf("data = %q err = %v", data, err)
	}
	data, err = p.FS.ReadAt(p.Node, 1, 100)
	if err != nil || string(data) != "bc" {
		t.Fatalf("partial: %q err = %v", data, err)
	}
}

func TestMkdirAllIdempotent(t *testing.T) {
	ns := newTestNS(t)
	must(t, ns.MkdirAll("/a/b/c", 0o755, 0, 0))
	must(t, ns.MkdirAll("/a/b/c", 0o755, 0, 0))
	must(t, ns.MkdirAll("/a/b", 0o755, 0, 0))
	attr, err := ns.Stat("/a/b/c")
	must(t, err)
	if attr.Type != TypeDir {
		t.Fatal("not a dir")
	}
}

func TestSetmode(t *testing.T) {
	ns := newTestNS(t)
	must(t, ns.WriteFile("/f", nil, 0o644, 0, 0))
	p, _ := ns.Resolve("/f", true)
	must(t, p.FS.Setmode(p.Node, 0o600))
	attr, _ := ns.Stat("/f")
	if attr.Mode != 0o600 {
		t.Fatalf("mode = %o", attr.Mode)
	}
}

func TestJoinPath(t *testing.T) {
	cases := []struct{ cwd, arg, want string }{
		{"/home/user", "file", "/home/user/file"},
		{"/home/user", "/abs/x", "/abs/x"},
		{"/home/user", "..", "/home"},
		{"/home/user", "../other/./f", "/home/other/f"},
		{"/", "..", "/"},
		{"/a", "b/../c", "/a/c"},
		{"/a/b", ".", "/a/b"},
	}
	for _, c := range cases {
		if got := JoinPath(c.cwd, c.arg); got != c.want {
			t.Errorf("JoinPath(%q, %q) = %q, want %q", c.cwd, c.arg, got, c.want)
		}
	}
}

// Property: WriteFile/ReadFile round-trip arbitrary contents at arbitrary
// (valid) names.
func TestFileRoundTripProperty(t *testing.T) {
	ns := newTestNS(t)
	f := func(name string, content []byte) bool {
		name = strings.Map(func(r rune) rune {
			if r == '/' || r == 0 {
				return '_'
			}
			return r
		}, name)
		if name == "" || name == "." || name == ".." {
			name = "x"
		}
		path := "/usr/tmp/" + name
		if err := ns.WriteFile(path, content, 0o644, 0, 0); err != nil {
			return false
		}
		got, err := ns.ReadFile(path)
		if err != nil {
			return false
		}
		return string(got) == string(content)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: resolution of the canonical path returned by Resolve reaches
// the same node (canonical paths are fixed points).
func TestCanonFixedPointProperty(t *testing.T) {
	ns := newTestNS(t)
	must(t, ns.MkdirAll("/n/brador/u2/user", 0o755, 0, 0))
	must(t, ns.WriteFile("/n/brador/u2/user/f", []byte("x"), 0o644, 0, 0))
	must(t, ns.Symlink("/u/user", "/n/brador/u2/user", 0, 0))
	paths := []string{
		"/u/user/f", "/n/brador/u2/user/f", "/u/./user/../user/f",
		"/etc", "/usr/tmp", "/u/user",
	}
	for _, p := range paths {
		r1, err := ns.Resolve(p, true)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		r2, err := ns.Resolve(r1.Canon, true)
		if err != nil {
			t.Fatalf("%s canon %s: %v", p, r1.Canon, err)
		}
		if r1.Node != r2.Node || r1.FS != r2.FS || r1.Canon != r2.Canon {
			t.Fatalf("%s: canon not fixed point: %+v vs %+v", p, r1, r2)
		}
	}
}
