package core

import (
	"sync"

	"procmig/internal/errno"
	"procmig/internal/kernel"
	"procmig/internal/sim"
)

// Classic-path migration transactions: a DumpHold armed before SIGDUMP
// makes the dump action park the victim frozen-but-alive after writing its
// dump files, instead of dying. The coordinator (migd's txmigrate handler)
// then drives the destination restart and resolves the hold: commit reaps
// the process, abort resumes it exactly where it was — the source survives
// every failure. The dump files are retained until the verdict and
// garbage-collected either way.

// Hold verdicts.
const (
	holdNone = iota
	holdCommit
	holdAbort
)

// DumpHold is one armed classic-path transaction.
type DumpHold struct {
	pid     int
	frozen  bool        // dump files written, victim parked
	dumpErr errno.Errno // the dump itself failed; victim resumed
	verdict int

	waitQ sim.Queue // the parked victim
	doneQ sim.Queue // the coordinator awaiting the freeze
}

var (
	holdMu sync.Mutex
	holds  = map[*kernel.Machine]map[int]*DumpHold{}
)

// ArmDumpHold registers a hold so the next SIGDUMP dump of pid on m
// freezes the process instead of killing it.
func ArmDumpHold(m *kernel.Machine, pid int) *DumpHold {
	holdMu.Lock()
	defer holdMu.Unlock()
	if holds[m] == nil {
		holds[m] = map[int]*DumpHold{}
	}
	h := &DumpHold{pid: pid}
	holds[m][pid] = h
	return h
}

// DisarmDumpHold removes the hold if it is still registered (resolved or
// not), so a later plain dumpproc behaves classically.
func DisarmDumpHold(m *kernel.Machine, pid int) {
	holdMu.Lock()
	defer holdMu.Unlock()
	delete(holds[m], pid)
}

func holdFor(m *kernel.Machine, pid int) *DumpHold {
	holdMu.Lock()
	defer holdMu.Unlock()
	return holds[m][pid]
}

// Frozen reports whether the victim has written its dump files and parked.
func (h *DumpHold) Frozen() bool { return h.frozen }

// DumpFailed reports the dump error, if the dump itself failed (the victim
// resumed on its own; there is nothing to commit).
func (h *DumpHold) DumpFailed() errno.Errno { return h.dumpErr }

// park runs in the victim's context at the end of a successful dump: wake
// the coordinator and sleep until the verdict. Commit lets the SIGDUMP
// path reap the process; abort resumes it.
func (h *DumpHold) park(p *kernel.Proc) errno.Errno {
	h.frozen = true
	h.doneQ.WakeAll()
	t := p.Task()
	for h.verdict == holdNone {
		t.Wait(&h.waitQ)
	}
	if h.verdict == holdCommit {
		return 0
	}
	return errno.ERESTART
}

// fail runs in the victim's context when the dump errored with the hold
// armed: record the error, wake the coordinator, and resume the victim
// (a failed migration must not kill the process).
func (h *DumpHold) fail(e errno.Errno) errno.Errno {
	h.frozen = false
	h.dumpErr = e
	h.doneQ.WakeAll()
	return errno.ERESTART
}

// AwaitFrozen blocks the coordinator until the victim is parked (true) or
// the dump failed / the process died some other way (false).
func (h *DumpHold) AwaitFrozen(t *sim.Task, p *kernel.Proc) bool {
	for !h.frozen && h.dumpErr == 0 {
		if p.State != kernel.ProcRunning {
			return false
		}
		t.WaitTimeout(&h.doneQ, 250*sim.Millisecond)
	}
	return h.frozen
}

// ResolveDumpHold delivers the verdict, wakes the victim, and
// garbage-collects the dump files (committed images have been read by the
// destination; aborted ones must not linger for a manual retry — the
// transaction owns them now). It is idempotent.
func ResolveDumpHold(m *kernel.Machine, h *DumpHold, commit bool) {
	if h.verdict == holdNone {
		if commit {
			h.verdict = holdCommit
		} else {
			h.verdict = holdAbort
		}
		h.waitQ.WakeAll()
	}
	DisarmDumpHold(m, h.pid)
	if h.frozen {
		aoutP, filesP, stackP := DumpPaths("", h.pid)
		for _, path := range []string{aoutP, filesP, stackP} {
			m.NS().Remove(path)
		}
	}
}
