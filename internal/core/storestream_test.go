package core

import (
	"bytes"
	"testing"

	"procmig/internal/kernel"
	"procmig/internal/netsim"
	"procmig/internal/sim"
	"procmig/internal/vm"
)

// storeHarness drives full streaming transfers of one fixed image over a
// real netsim stream into an assembler backed by a destination page store,
// so the cross-session dedup paths — speculative refs, NACK resends,
// poisoning — run exactly as migd runs them.
type storeHarness struct {
	t     *testing.T
	net   *netsim.Network
	src   *netsim.Host
	cpu   *vm.CPU
	text  []byte
	store *PageStore // destination store, shared across transfers
	sink  *asmSink
}

func newStoreHarness(t *testing.T, destBudget int64) *storeHarness {
	eng := sim.NewEngine()
	net := netsim.New(eng, 0, 0)
	src := net.AddHost("src")
	net.AddHost("dst")
	text := make([]byte, 600)
	for i := range text {
		text[i] = byte(i * 3)
	}
	data := make([]byte, 8*vm.PageSize)
	x := uint32(0x2545f491)
	for i := range data {
		x = x*1664525 + 1013904223 // LCG noise: LZ must not be able to elide it
		data[i] = byte(x>>24) | 1
	}
	h := &storeHarness{
		t: t, net: net, src: src, text: text,
		cpu:   vm.New(text, data, vm.MinISA(text)),
		store: NewPageStore(destBudget),
	}
	dstHost, _ := net.Host("dst")
	if err := dstHost.ListenStream(9, func(_ *sim.Task, _ string, hello []byte) (netsim.StreamSink, error) {
		asm, err := NewImageAssembler(hello)
		if err != nil {
			return nil, err
		}
		asm.SetStore(h.store)
		h.sink = &asmSink{asm: asm}
		return h.sink, nil
	}); err != nil {
		t.Fatal(err)
	}
	return h
}

// transfer runs one complete session against the destination store:
// one full round, metadata, commit, close. remote is what the source
// believes the destination holds; srcStore, when non-nil, receives the
// source-side inserts. Returns the session for its accounting and the
// spooled image (nil when the transfer failed — the caller then inspects
// sink.err).
func (h *storeHarness) transfer(remote *StoreSummary, srcStore *PageStore) (*StreamSession, []byte) {
	st, err := h.src.OpenStream(nil, "dst", 9, (&StreamHello{
		PID: 7, ISA: h.cpu.ISA,
		TextLen: uint32(len(h.cpu.Text)), DataLen: uint32(len(h.cpu.Data)), Source: "src",
	}).Encode())
	if err != nil {
		h.t.Fatal(err)
	}
	sess := &StreamSession{Stream: st, Remote: remote, Store: srcStore}
	costs := kernel.DefaultCosts()
	charge := func(sim.Duration) {}
	if err := sess.SendRound(nil, h.cpu, costs, charge); err != nil {
		h.t.Fatal(err)
	}
	if _, err := sess.CloseSynthetic(nil, h.cpu, 7, costs, charge); err != nil {
		h.t.Fatal(err)
	}
	if h.sink.err != nil {
		return sess, nil
	}
	aoutRaw, filesRaw, stackRaw, err := h.sink.asm.Spool()
	if err != nil {
		h.t.Fatalf("spool: %v (session %+v)", err, sess.Stats())
	}
	img := append(append(append([]byte(nil), aoutRaw...), filesRaw...), stackRaw...)
	return sess, img
}

// TestStoreCrossSessionElision: the first transfer warms the destination
// store page by page; a second session of the identical image, told what
// the store holds, ships speculative refs instead of bytes — and the
// restored image is bit-identical.
func TestStoreCrossSessionElision(t *testing.T) {
	h := newStoreHarness(t, DefaultStoreBudget)
	srcStore := NewPageStore(DefaultStoreBudget)

	cold, img1 := h.transfer(h.store.Summary(), srcStore)
	if img1 == nil {
		t.Fatal(h.sink.err)
	}
	if cold.PagesSpec != 0 {
		t.Fatalf("cold transfer shipped %d speculative refs against an empty store", cold.PagesSpec)
	}
	if h.store.Len() == 0 {
		t.Fatal("destination store not fed by arriving pages")
	}
	if srcStore.Len() == 0 {
		t.Fatal("source store not fed by shipped pages")
	}

	warm, img2 := h.transfer(h.store.Summary(), srcStore)
	if img2 == nil {
		t.Fatal(h.sink.err)
	}
	if warm.PagesSpec == 0 {
		t.Fatalf("warm transfer elided nothing: %+v", warm.Stats())
	}
	if warm.SpecNacks != 0 {
		t.Fatalf("warm transfer bounced %d refs with everything resident", warm.SpecNacks)
	}
	if warm.WireBytes >= cold.WireBytes/4 {
		t.Fatalf("warm transfer shipped %d B, cold %d B — refs did not pay",
			warm.WireBytes, cold.WireBytes)
	}
	if !bytes.Equal(img1, img2) {
		t.Fatal("image restored through store refs differs from the cold copy")
	}
}

// TestStoreEvictionResendsNotErrors: pages evicted between the summary
// advertisement and the refs arriving are soft misses — NACKed and resent,
// the transfer commits, the image is intact.
func TestStoreEvictionResendsNotErrors(t *testing.T) {
	h := newStoreHarness(t, DefaultStoreBudget)
	if _, img := h.transfer(nil, nil); img == nil {
		t.Fatal(h.sink.err)
	}
	summary := h.store.Summary()
	// Evict everything the summary just advertised: budget churn squeezed
	// the entries out after the handshake. The refs must all bounce.
	h.store.Reset()
	sess, img := h.transfer(summary, nil)
	if img == nil {
		t.Fatal(h.sink.err)
	}
	if sess.PagesSpec == 0 {
		t.Fatal("stale summary produced no speculative refs")
	}
	if sess.SpecNacks != sess.PagesSpec {
		t.Fatalf("%d refs, %d NACKs — evicted entries must all resend",
			sess.PagesSpec, sess.SpecNacks)
	}
	if _, coldImg := h.transfer(nil, nil); !bytes.Equal(img, coldImg) {
		t.Fatal("image restored through NACK resends differs")
	}
}

// TestStoreFalsePositiveSummaryResends: a summary whose filter claims
// everything (all bits set) makes the source speculate on every page; the
// destination's store has none of them, so every ref NACKs and resends —
// wasted refs, correct image.
func TestStoreFalsePositiveSummaryResends(t *testing.T) {
	h := newStoreHarness(t, DefaultStoreBudget)
	lying := &StoreSummary{Gen: 1, Entries: 1000, K: summaryProbes, Bits: make([]byte, 256)}
	for i := range lying.Bits {
		lying.Bits[i] = 0xff
	}
	sess, img := h.transfer(lying, nil)
	if img == nil {
		t.Fatal(h.sink.err)
	}
	if sess.PagesSpec == 0 || sess.SpecNacks != sess.PagesSpec {
		t.Fatalf("all-ones summary: %d refs, %d NACKs — want every ref bounced",
			sess.PagesSpec, sess.SpecNacks)
	}
	if _, coldImg := h.transfer(nil, nil); !bytes.Equal(img, coldImg) {
		t.Fatal("image restored through false-positive resends differs")
	}
}

// TestStorePoisonedEntryFailsLoudly: a store entry whose bytes went bad is
// the one hard failure — the ref must kill the transfer with
// ErrHashMismatch, never restart from silently wrong memory.
func TestStorePoisonedEntryFailsLoudly(t *testing.T) {
	h := newStoreHarness(t, DefaultStoreBudget)
	if _, img := h.transfer(nil, nil); img == nil {
		t.Fatal(h.sink.err)
	}
	summary := h.store.Summary()
	// Corrupt every resident entry behind the store's back so the refs
	// cannot be satisfied by a healthy copy.
	for _, e := range h.store.entries {
		e.data[3] ^= 0xff
	}
	sess, img := h.transfer(summary, nil)
	if img != nil {
		t.Fatalf("poisoned store committed a transfer: %+v", sess.Stats())
	}
	if h.sink.err != ErrHashMismatch {
		t.Fatalf("sink err = %v, want ErrHashMismatch", h.sink.err)
	}
}

// TestStoreRefBatchDecodeRejectsBadInput covers the aggregated-ref record's
// framing: a count that disagrees with the payload must be refused.
func TestStoreRefBatchDecodeRejectsBadInput(t *testing.T) {
	asm, err := NewImageAssembler((&StreamHello{PID: 1, TextLen: 10, DataLen: 10}).Encode())
	if err != nil {
		t.Fatal(err)
	}
	rec := []byte{RecPageStoreRefBatch}
	rec = append(rec, 0, 0, 0, 2) // claims two refs
	rec = append(rec, make([]byte, 12)...)
	if err := asm.Apply(rec); err == nil {
		t.Fatal("short batch accepted")
	}
	rec2 := []byte{RecPageStoreRefBatch, 0, 0, 0, 1}
	rec2 = append(rec2, make([]byte, 13)...) // one ref plus a trailing byte
	if err := asm.Apply(rec2); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	header := []byte{RecPageStoreRefBatch, 0, 0, 0, 1}
	for n := 1; n < len(header); n++ {
		if err := asm.Apply(header[:n]); err == nil {
			t.Fatalf("truncated batch header (%d bytes) accepted", n)
		}
	}
	// A well-formed batch against no store records misses, not errors.
	good := []byte{RecPageStoreRefBatch, 0, 0, 0, 1}
	good = append(good, 0, 0, 0, 5)             // page 5
	good = append(good, 1, 2, 3, 4, 5, 6, 7, 8) // some hash
	if err := asm.Apply(good); err != nil {
		t.Fatal(err)
	}
	if _, ok := asm.specMiss[5]; !ok {
		t.Fatal("storeless ref not recorded as a miss")
	}
}
