package core

import (
	"bytes"
	"testing"

	"procmig/internal/vm"
)

// lzTestInputs covers the compressibility spectrum: empty, all-zero,
// short, repetitive, structured, long-run, and pseudorandom pages.
func lzTestInputs() map[string][]byte {
	random := make([]byte, vm.PageSize)
	x := uint64(0x2545f4914f6cdd1d)
	for i := range random {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		random[i] = byte(x)
	}
	repeat := bytes.Repeat([]byte("the quick brown fox "), 60)
	structured := make([]byte, vm.PageSize)
	for i := range structured {
		structured[i] = byte(i / 16)
	}
	long := make([]byte, 3*vm.PageSize)
	for i := range long {
		long[i] = byte(i % 5)
	}
	return map[string][]byte{
		"empty":      {},
		"zero":       make([]byte, vm.PageSize),
		"short":      []byte("abc"),
		"repeat":     repeat,
		"structured": structured,
		"longrun":    long,
		"random":     random,
	}
}

func TestLZRoundTrip(t *testing.T) {
	for name, src := range lzTestInputs() {
		frame := AppendLZ(nil, src)
		out, err := DecompressLZ(frame)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !bytes.Equal(out, src) {
			t.Fatalf("%s: round trip corrupted %d bytes", name, len(src))
		}
		// Into-variant with a stale destination buffer.
		dst := bytes.Repeat([]byte{0xee}, len(src))
		if err := DecompressLZInto(dst, frame); err != nil {
			t.Fatalf("%s: DecompressLZInto: %v", name, err)
		}
		if !bytes.Equal(dst, src) {
			t.Fatalf("%s: DecompressLZInto corrupted the data", name)
		}
		// Deterministic: same input, same frame.
		if !bytes.Equal(frame, AppendLZ(nil, src)) {
			t.Fatalf("%s: compression not deterministic", name)
		}
	}
}

func TestLZCompressesRedundantPages(t *testing.T) {
	in := lzTestInputs()
	for _, name := range []string{"zero", "repeat", "structured", "longrun"} {
		if frame := AppendLZ(nil, in[name]); len(frame) >= len(in[name]) {
			t.Errorf("%s: frame %d B not smaller than input %d B",
				name, len(frame), len(in[name]))
		}
	}
	// Incompressible input may expand, but only by the documented bound.
	frame := AppendLZ(nil, in["random"])
	if max := lzHeaderLen + len(in["random"]) + len(in["random"])/128 + 1; len(frame) > max {
		t.Fatalf("random: frame %d B exceeds worst-case bound %d B", len(frame), max)
	}
}

func TestLZRejectsCorruptFrames(t *testing.T) {
	src := lzTestInputs()["structured"]
	frame := AppendLZ(nil, src)

	check := func(name string, bad []byte) {
		t.Helper()
		if _, err := DecompressLZ(bad); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	check("empty", nil)
	check("bad magic", append([]byte{lzMagic ^ 0xff}, frame[1:]...))
	for n := 0; n < len(frame); n += 13 {
		check("truncated", frame[:n])
	}
	check("trailing garbage", append(append([]byte(nil), frame...), 7))

	// A flipped payload byte must fail the checksum, not decode silently.
	flipped := append([]byte(nil), frame...)
	flipped[len(flipped)-1] ^= 0x40
	check("flipped payload byte", flipped)

	// A declared length beyond the cap is refused before any allocation.
	huge := append([]byte(nil), frame...)
	huge[1], huge[2], huge[3], huge[4] = 0xff, 0xff, 0xff, 0xff
	check("oversized declared length", huge)

	// Offset pointing before the start of the output.
	badRef := []byte{lzMagic, 0, 0, 0, 4, 0, 0, 0, 0, 0x80, 0, 1}
	check("reference before start", badRef)

	// Into-variant with the wrong destination size.
	if err := DecompressLZInto(make([]byte, len(src)+1), frame); err == nil {
		t.Fatal("wrong destination length accepted")
	}
}

func TestLZOverlappingRuns(t *testing.T) {
	// aaaaa... compresses to one literal + an overlapping copy (off=1);
	// the byte-at-a-time decode must replicate correctly.
	src := bytes.Repeat([]byte{'a'}, 300)
	out, err := DecompressLZ(AppendLZ(nil, src))
	if err != nil || !bytes.Equal(out, src) {
		t.Fatalf("overlapping run corrupted (err=%v)", err)
	}
	// Long matches that need several copy tokens, including the
	// strand-avoidance split (match just over lzMaxCopy).
	for _, n := range []int{int(lzMaxCopy) + 1, int(lzMaxCopy) + 2, int(lzMaxCopy) + 3, 2*int(lzMaxCopy) + 1} {
		src := append(bytes.Repeat([]byte{1, 2, 3, 4}, 2), bytes.Repeat([]byte{9}, n)...)
		out, err := DecompressLZ(AppendLZ(nil, src))
		if err != nil || !bytes.Equal(out, src) {
			t.Fatalf("match len %d corrupted (err=%v)", n, err)
		}
	}
}
