package asm

import (
	"strings"
	"testing"

	"procmig/internal/vm"
)

func TestNumericLiteralForms(t *testing.T) {
	exe := MustAssemble(`
start:  movi r0, 42
        movi r1, 0x2a
        movi r2, 052
        movi r3, 'A'
        halt
`)
	c := runToHalt(t, exe, vm.ISA1, 10)
	if c.R[0] != 42 || c.R[1] != 42 || c.R[2] != 42 || c.R[3] != 'A' {
		t.Fatalf("r0..r3 = %d %d %d %d", c.R[0], c.R[1], c.R[2], c.R[3])
	}
}

func TestNegativeImmediates(t *testing.T) {
	exe := MustAssemble(`
start:  movi r0, -1
        movi r1, 5
        add  r1, r0
        halt
`)
	c := runToHalt(t, exe, vm.ISA1, 10)
	if c.R[1] != 4 {
		t.Fatalf("5 + (-1) = %d", c.R[1])
	}
}

func TestLabelMinusOffset(t *testing.T) {
	exe := MustAssemble(`
start:  ld r0, tab2-4
        halt
        .data
tab:    .word 7
tab2:   .word 9
`)
	c := runToHalt(t, exe, vm.ISA1, 10)
	if c.R[0] != 7 {
		t.Fatalf("tab2-4 loaded %d, want 7", c.R[0])
	}
}

func TestNumericSyscallOperand(t *testing.T) {
	exe := MustAssemble("start: sys 1\n") // exit
	if exe.Text[1] != byte(vm.SysExit) {
		t.Fatalf("sys operand = %d", exe.Text[1])
	}
}

func TestAllOpcodesDisassemble(t *testing.T) {
	// A program touching every operand kind.
	exe := MustAssemble(`
start:  nop
        movi r0, 1
        mov  r1, r0
        ld   r2, d
        st   r2, d
        ldr  r3, r0
        str  r3, r0
        ldb  r4, r0
        stb  r4, r0
        add  r0, r1
        addi r0, 2
        sub  r0, r1
        subi r0, 2
        mul  r0, r1
        div  r0, r1
        mod  r0, r1
        and  r0, r1
        or   r0, r1
        xor  r0, r1
        shl  r0, r1
        shr  r0, r1
        cmp  r0, r1
        cmpi r0, 3
        jmp  j1
j1:     jeq  j2
j2:     jne  j3
j3:     jlt  j4
j4:     jgt  j5
j5:     jle  j6
j6:     jge  j7
j7:     push r0
        pop  r0
        call j8
j8:     ret
        sys  exit
        mull r0, r1
        divl r0, r1
        bswap r0
        ffs  r0
        halt
        .data
d:      .word 0
`)
	lines := Disasm(exe.Text)
	joined := strings.Join(lines, "\n")
	for name := range vm.OpcodeByName {
		if !strings.Contains(joined, name) {
			t.Errorf("disassembly missing %q", name)
		}
	}
}

func TestDisasmTruncatedAndGarbage(t *testing.T) {
	// Garbage byte then a truncated instruction must not panic.
	lines := Disasm([]byte{0xEE, byte(vm.MOVI), 0})
	if len(lines) == 0 {
		t.Fatal("no output")
	}
	if !strings.Contains(lines[0], ".byte") {
		t.Fatalf("garbage line = %q", lines[0])
	}
	if !strings.Contains(strings.Join(lines, " "), "truncated") {
		t.Fatalf("lines = %v", lines)
	}
}

func TestEmptySourceAssembles(t *testing.T) {
	exe, err := Assemble("")
	if err != nil {
		t.Fatal(err)
	}
	if len(exe.Text) != 0 || len(exe.Data) != 0 || exe.Entry != 0 {
		t.Fatalf("exe = %+v", exe)
	}
}

func TestLabelOnlyLines(t *testing.T) {
	exe := MustAssemble(`
a:
b:      nop
start:  jmp a
`)
	// a and b both point at the nop (offset 0).
	if exe.Text[0] != byte(vm.NOP) {
		t.Fatal("layout wrong")
	}
}

func TestSPOperandCaseInsensitive(t *testing.T) {
	for _, src := range []string{"start: mov r0, SP\n halt", "start: MOV R0, sp\n HALT"} {
		if _, err := Assemble(src); err != nil {
			t.Errorf("%q: %v", src, err)
		}
	}
}

func TestWordWithLabelValue(t *testing.T) {
	exe := MustAssemble(`
start:  ld  r0, ptr
        halt
        .data
val:    .word 77
ptr:    .word val
`)
	c := runToHalt(t, exe, vm.ISA1, 10)
	// r0 holds the address of val; dereference manually.
	v, ok := c.ReadU32(c.R[0])
	if !ok || v != 77 {
		t.Fatalf("ptr chase: %d, %v", v, ok)
	}
}
