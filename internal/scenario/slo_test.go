package scenario_test

import (
	"path/filepath"
	"reflect"
	"testing"

	"procmig/internal/scenario"
	"procmig/internal/sim"
)

// sloBase: one hog on alpha with a request generator aimed at it.
func sloBase(name string, ls scenario.LoadSpec) *scenario.Scenario {
	return &scenario.Scenario{
		Name:  name,
		Seed:  9,
		Hosts: []string{"alpha", "beta"},
		Workloads: []scenario.Workload{
			{Name: "hog", Host: "alpha", Prog: "hog", TotalBytes: 64 << 10, WSBytes: 16 << 10},
		},
		Load: []scenario.LoadSpec{ls},
		Events: []scenario.Event{
			{Op: "await_ready", Workload: "hog"},
			{Op: "sleep", Dur: 5 * sim.Second},
			{Op: "migrate", Workload: "hog", Host: "beta", To: "beta", Stream: true, Rounds: "2"},
			{Op: "sleep", Dur: 5 * sim.Second},
		},
		Settle: sim.Second,
	}
}

// A generous SLO across a live migration holds, and the result carries the
// client-side numbers: every submitted request completes (the open-loop
// client rides out the freeze) and the outcome lands in Result.Load.
func TestSLOHoldsAcrossMigration(t *testing.T) {
	sc := sloBase("slo-pass", scenario.LoadSpec{
		Name: "rq", Workload: "hog",
		Interval: 20 * sim.Millisecond, Service: sim.Millisecond,
		SLOP99: 5 * sim.Second, SLODropped: 0,
	})
	res, err := scenario.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("violations: %v", res.Violations)
	}
	lo := res.Load["rq"]
	if lo == nil || lo.Completed == 0 || lo.Dropped != 0 {
		t.Fatalf("load outcome = %+v", lo)
	}
	if lo.Submitted != lo.Completed {
		t.Fatalf("submitted %d != completed %d", lo.Submitted, lo.Completed)
	}
	if lo.P99 <= 0 || lo.Max < lo.P99 {
		t.Fatalf("quantiles look wrong: %+v", lo.Stats)
	}
}

// The DSL round-trips the slo block: a scenario with load specs survives
// Encode/Decode bit for bit (DisallowUnknownFields would reject a typo).
func TestSLOJSONRoundTrip(t *testing.T) {
	sc := sloBase("slo-json", scenario.LoadSpec{
		Name: "rq", Workload: "hog",
		Interval: 10 * sim.Millisecond, Service: sim.Millisecond,
		Timeout: sim.Second, Window: 500 * sim.Millisecond,
		SLOP99: 100 * sim.Millisecond, SLODropped: 3,
	})
	raw, err := sc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := scenario.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, back) {
		t.Fatalf("round trip changed the scenario:\n%+v\n%+v", sc, back)
	}
}

// The SLO-breach negative test the CI step runs: a deliberately starved
// scenario — every request needs 5ms of a CPU it shares with a hog, the
// SLO demands 1ms — must fail the slo invariant at quiesce and emit a
// replay artifact that reproduces the violation.
func TestNegativeSLOStarved(t *testing.T) {
	sc := &scenario.Scenario{
		Name:  "neg-slo-starved",
		Seed:  11,
		Hosts: []string{"alpha"},
		Workloads: []scenario.Workload{
			{Name: "hog", Host: "alpha", Prog: "hog", TotalBytes: 32 << 10, WSBytes: 8 << 10},
		},
		Load: []scenario.LoadSpec{{
			Name: "starved", Workload: "hog",
			Interval: 20 * sim.Millisecond, Service: 5 * sim.Millisecond,
			SLOP99: sim.Millisecond, SLODropped: 0,
		}},
		Events: []scenario.Event{{Op: "sleep", Dur: 10 * sim.Second}},
	}
	res, err := scenario.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	v := res.FirstViolation()
	if v == nil || v.Invariant != "slo" || v.EventIndex != -1 {
		t.Fatalf("violation = %v, want slo at quiesce", v)
	}
	lo := res.Load["starved"]
	if lo == nil || lo.Breaches == 0 {
		t.Fatalf("no breach records on a starved run: %+v", lo)
	}

	art := scenario.NewArtifact(sc, res)
	if art == nil {
		t.Fatal("slo breach produced no replay artifact")
	}
	path := filepath.Join(t.TempDir(), "slo_replay.json")
	if err := art.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := scenario.LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := back.Replay()
	if err != nil {
		t.Fatal(err)
	}
	v2 := res2.FirstViolation()
	if v2 == nil || v2.Invariant != "slo" || v2.At != v.At || v2.Detail != v.Detail {
		t.Fatalf("replayed violation %v, original %v", v2, v)
	}
}

// A drop budget is enforced separately from the latency target: requests
// that outlive their client timeout count against slo_dropped.
func TestNegativeSLODropBudget(t *testing.T) {
	sc := &scenario.Scenario{
		Name:  "neg-slo-drops",
		Seed:  12,
		Hosts: []string{"alpha"},
		Workloads: []scenario.Workload{
			{Name: "hog", Host: "alpha", Prog: "hog", TotalBytes: 32 << 10, WSBytes: 8 << 10},
		},
		Load: []scenario.LoadSpec{{
			Name: "dropper", Workload: "hog",
			Interval: 10 * sim.Millisecond, Service: 50 * sim.Millisecond,
			Timeout: 20 * sim.Millisecond,
			SLOP99:  60 * sim.Second, SLODropped: 0,
		}},
		Events: []scenario.Event{{Op: "sleep", Dur: 10 * sim.Second}},
	}
	res, err := scenario.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	v := res.FirstViolation()
	if v == nil || v.Invariant != "slo" {
		t.Fatalf("violation = %v, want slo (drop budget)", v)
	}
	if res.Load["dropper"].Dropped == 0 {
		t.Fatal("no drops recorded")
	}
	// The same scenario with skip_slo measures but does not judge.
	sc.Invariants.SkipSLO = true
	res2, err := scenario.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Passed() || res2.Load["dropper"].Dropped == 0 {
		t.Fatalf("skip_slo run: passed=%v load=%+v", res2.Passed(), res2.Load["dropper"])
	}
}
