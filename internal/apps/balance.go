package apps

import (
	"fmt"

	"procmig/internal/kernel"
	"procmig/internal/sim"
	"procmig/internal/tty"
)

// MigrateProc migrates pid from src to dst by orchestrating dumpproc and
// restart directly through the kernel (as the daemon-based application the
// paper recommends for load balancing would — §6.4, §8). It runs with
// superuser credentials and returns the process's new pid on dst.
func MigrateProc(t *sim.Task, src, dst *kernel.Machine, pid int) (int, error) {
	root := kernel.Creds{}
	runOn := func(m *kernel.Machine, isRestart bool, path string, args ...string) (*kernel.Proc, int, error) {
		pty := tty.NewNetworkPTY(m.Engine(), m.Name+":balancer-pty")
		stdio := m.NewTerminalFile(kernel.NewTTYDevice(pty))
		p, err := m.Spawn(kernel.SpawnSpec{
			Path:       path,
			Args:       append([]string{path}, args...),
			Creds:      root,
			CWD:        "/",
			TTY:        pty,
			InheritFDs: []*kernel.File{stdio, stdio, stdio},
		})
		if err != nil {
			return nil, -1, err
		}
		if isRestart {
			status, migrated := p.AwaitExitOrMigrated(t)
			if !migrated {
				return p, status, fmt.Errorf("restart exited %d: %s", status, pty.Output())
			}
			return p, 0, nil
		}
		status := p.AwaitExit(t)
		if status != 0 {
			return p, status, fmt.Errorf("%s exited %d: %s", path, status, pty.Output())
		}
		return p, 0, nil
	}

	if _, _, err := runOn(src, false, "/bin/dumpproc", "-p", fmt.Sprint(pid)); err != nil {
		return 0, err
	}
	rp, _, err := runOn(dst, true, "/bin/restart", "-p", fmt.Sprint(pid), "-h", src.Name)
	if err != nil {
		return 0, err
	}
	return rp.PID, nil
}

// MigrationEvent records one balancer decision.
type MigrationEvent struct {
	At   sim.Time
	PID  int
	New  int
	From string
	To   string
}

// Balancer implements the §8 load-balancing application: move CPU-bound
// jobs from busy machines to idle ones. "Candidates for migration can be
// best selected from the processes that have been running for more than a
// certain amount of time", so the overhead of moving them pays off.
type Balancer struct {
	Machines []*kernel.Machine
	Period   sim.Duration // how often load is sampled
	MinAge   sim.Duration // minimum runtime before a process is a candidate
	// MinImbalance is the smallest (busiest − idlest) run-queue
	// difference worth acting on; 2 means the move strictly helps.
	MinImbalance int

	Events []MigrationEvent
}

// candidate picks the migratable process on m: a VM process old enough
// and mostly CPU-bound.
func (b *Balancer) candidate(m *kernel.Machine, now sim.Time) *kernel.Proc {
	var best *kernel.Proc
	for _, p := range m.Procs() {
		if p.State != kernel.ProcRunning || p.VM == nil {
			continue
		}
		age := sim.Duration(now - p.StartedAt)
		if age < b.MinAge {
			continue
		}
		// CPU-bound: the process has been computing for most of its fair
		// share of the (contended) CPU. A process blocked on a terminal
		// has UTime near zero and is rejected.
		share := age / sim.Duration(m.Load()+1)
		if p.UTime*2 < share {
			continue
		}
		if best == nil || p.UTime > best.UTime {
			best = p
		}
	}
	return best
}

// Step samples load once and performs at most one migration. It reports
// whether it migrated anything.
func (b *Balancer) Step(t *sim.Task) bool {
	if len(b.Machines) < 2 {
		return false
	}
	busiest, idlest := b.Machines[0], b.Machines[0]
	for _, m := range b.Machines[1:] {
		if m.Load() > busiest.Load() {
			busiest = m
		}
		if m.Load() < idlest.Load() {
			idlest = m
		}
	}
	min := b.MinImbalance
	if min <= 0 {
		min = 2
	}
	if busiest == idlest || busiest.Load()-idlest.Load() < min {
		return false
	}
	p := b.candidate(busiest, t.Now())
	if p == nil {
		return false
	}
	pid := p.PID
	newPid, err := MigrateProc(t, busiest, idlest, pid)
	if err != nil {
		return false
	}
	b.Events = append(b.Events, MigrationEvent{
		At: t.Now(), PID: pid, New: newPid, From: busiest.Name, To: idlest.Name,
	})
	return true
}

// Run samples every Period until the stop condition reports true (checked
// after each step). Typical stop conditions: all jobs finished, or a
// simulated-time budget elapsed.
func (b *Balancer) Run(t *sim.Task, stop func() bool) {
	for !stop() {
		t.Sleep(b.Period)
		b.Step(t)
	}
}
