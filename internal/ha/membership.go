package ha

import (
	"sort"

	"procmig/internal/sim"
)

// Membership is one host's view of the cluster, built purely from
// received heartbeats. Failure detection is timeout-based suspicion: a
// member that has been silent longer than SuspectAfter is not Alive. The
// view is eventually consistent and can be wrong both ways — a suspect
// may be merely partitioned (the guardian arbitrates before acting) and a
// fresh member may have just crashed.
type Membership struct {
	self         string
	suspectAfter sim.Duration
	members      map[string]*memberState
}

type memberState struct {
	seq       uint32
	load      int
	procs     []ProcStat
	lastHeard sim.Time
}

// Member is one row of the view at a given instant.
type Member struct {
	Host      string
	Seq       uint32
	Load      int
	Procs     []ProcStat
	LastHeard sim.Time
	Alive     bool
}

// NewMembership creates an empty table for the named host.
func NewMembership(self string, suspectAfter sim.Duration) *Membership {
	return &Membership{
		self:         self,
		suspectAfter: suspectAfter,
		members:      map[string]*memberState{},
	}
}

// Observe folds one heartbeat into the table. Stale beacons (a sequence
// number at or below the freshest seen) still refresh liveness — a
// delayed duplicate proves the sender was alive when it sent — but never
// roll the advertised state backward.
func (ms *Membership) Observe(hb *Heartbeat, now sim.Time) {
	st, ok := ms.members[hb.Host]
	if !ok {
		st = &memberState{}
		ms.members[hb.Host] = st
	}
	if now > st.lastHeard {
		st.lastHeard = now
	}
	if ok && hb.Seq <= st.seq {
		return
	}
	st.seq = hb.Seq
	st.load = hb.Load
	st.procs = hb.Procs
}

// Alive reports whether the named member has beaconed recently enough.
// Hosts never heard from are not alive.
func (ms *Membership) Alive(host string, now sim.Time) bool {
	st, ok := ms.members[host]
	return ok && sim.Duration(now-st.lastHeard) <= ms.suspectAfter
}

// LastHeard returns when the named member last beaconed (0, false if
// never).
func (ms *Membership) LastHeard(host string) (sim.Time, bool) {
	st, ok := ms.members[host]
	if !ok {
		return 0, false
	}
	return st.lastHeard, true
}

// View snapshots the table, sorted by host name for determinism.
func (ms *Membership) View(now sim.Time) []Member {
	out := make([]Member, 0, len(ms.members))
	for host, st := range ms.members {
		out = append(out, Member{
			Host:      host,
			Seq:       st.seq,
			Load:      st.load,
			Procs:     append([]ProcStat(nil), st.procs...),
			LastHeard: st.lastHeard,
			Alive:     sim.Duration(now-st.lastHeard) <= ms.suspectAfter,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out
}
