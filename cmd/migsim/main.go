// Command migsim boots a simulated cluster and executes a script of
// commands against it — the closest thing to sitting at a 1987 Sun
// terminal this repository offers. The script comes from stdin or from a
// file argument; see -help for the command set.
//
// Example session (also examples/quickstart):
//
//	migsim -hosts brick,schooner <<'EOF'
//	run brick /bin/counter
//	sleep 2
//	type brick hello
//	sleep 2
//	migrate schooner $1 brick schooner
//	sleep 2
//	type schooner world
//	sleep 2
//	eof schooner
//	tty brick
//	tty schooner
//	EOF
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"procmig/internal/cluster"
	"procmig/internal/controller"
	"procmig/internal/ha"
	"procmig/internal/kernel"
	"procmig/internal/obs"
	"procmig/internal/sim"
	"procmig/internal/vm"
)

const usage = `script commands (one per line, # comments):
  run <host> <path> [args...]   spawn a program; its pid becomes $1, $2, ...
  type <host> <text>            type a line on the host's console (newline added)
  eof <host>                    type end-of-file on the console
  sleep <seconds>               advance virtual time
  ps <host>                     print the process table
  kill <host> <pid> [signal#]   send a signal (default SIGTERM)
  dumpproc <host> <pid>         run dumpproc on the host and wait
  restart <host> <pid> <from>   run restart on the host and wait
  migrate <host> <pid> <from> <to>   run migrate on the host and wait
  cat <host> <path>             print a file
  tty <host>                    print the console transcript so far
  trace <host> on|off           toggle the ktrace-style kernel event log
  tracelog <host>               print the kernel event log
  controller start <host>       start heartbeats + the desired-state controller on a host
  controller submit <name> <path> <n> [spread|binpack]   declare an app of n replicas
  controller drain <host>       start a rolling drain of a host
  controller status             print desired vs. observed state and drain progress
  metrics [host]                print the metrics registry (all hosts + totals)
  metrics -format prom          print the registry in Prometheus text exposition
  status                        print per-host loss/occupancy gauges (trace drops,
                                frozen procs, migd table occupancy + evictions)
  spans                         print the migration span traces
  timeline <file>               export spans + latency series as Chrome trace JSON
  time                          print the virtual clock
Pids: $N refers to the pid of the N-th 'run'.`

func main() {
	hostsFlag := flag.String("hosts", "brick,schooner", "comma-separated host names")
	sun3Flag := flag.String("sun3", "", "comma-separated hosts that are Sun-3s (ISA2)")
	spoof := flag.Bool("spoof", false, "enable the §7 pid/hostname spoofing extension")
	limit := flag.Int("limit", 3600, "virtual-time limit in seconds")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: migsim [flags] [script]\n%s\n\nflags:\n", usage)
		flag.PrintDefaults()
	}
	flag.Parse()

	sun3 := map[string]bool{}
	for _, h := range strings.Split(*sun3Flag, ",") {
		if h != "" {
			sun3[h] = true
		}
	}
	var hosts []cluster.HostSpec
	for _, h := range strings.Split(*hostsFlag, ",") {
		isa := vm.ISA1
		if sun3[h] {
			isa = vm.ISA2
		}
		hosts = append(hosts, cluster.HostSpec{Name: h, ISA: isa})
	}
	c, err := cluster.New(cluster.Options{
		Hosts:  hosts,
		Config: kernel.Config{TrackNames: true, PidSpoof: *spoof},
	})
	fatal(err)
	fatal(c.InstallVM("/bin/counter", cluster.TestProgramSrc))
	fatal(c.InstallVM("/bin/hog", cluster.HogSrc))

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		fatal(err)
		defer f.Close()
		in = f
	}
	var script [][]string
	scanner := bufio.NewScanner(in)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		script = append(script, strings.Fields(line))
	}
	fatal(scanner.Err())

	s := &session{c: c}
	c.Eng.Go("migsim-driver", func(tk *sim.Task) {
		for _, cmd := range script {
			if err := s.exec(tk, cmd); err != nil {
				fmt.Fprintf(os.Stderr, "migsim: %s: %v\n", strings.Join(cmd, " "), err)
				return
			}
		}
	})
	if err := c.RunUntil(sim.Time(sim.Duration(*limit) * sim.Second)); err != nil {
		if _, stalled := err.(*sim.StallError); !stalled {
			fatal(err)
		}
		// Blocked processes at the end of the script are normal.
	}
}

// ts renders the virtual clock for log prefixes.
func ts(tk *sim.Task) string { return sim.Duration(tk.Now()).String() }

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "migsim:", err)
		os.Exit(1)
	}
}

type session struct {
	c    *cluster.Cluster
	pids []int
}

// pid resolves a "$N" reference or a literal pid.
func (s *session) pid(arg string) (int, error) {
	if strings.HasPrefix(arg, "$") {
		n, err := strconv.Atoi(arg[1:])
		if err != nil || n < 1 || n > len(s.pids) {
			return 0, fmt.Errorf("bad pid reference %q", arg)
		}
		return s.pids[n-1], nil
	}
	return strconv.Atoi(arg)
}

func (s *session) runAndWait(tk *sim.Task, host, path string, args ...string) error {
	p, err := s.c.Spawn(host, nil, cluster.DefaultUser, path, args...)
	if err != nil {
		return err
	}
	status, migrated := p.AwaitExitOrMigrated(tk)
	if migrated {
		fmt.Printf("[%v] %s: %s restarted the process as pid %d\n", ts(tk), host, path, p.PID)
		return nil
	}
	fmt.Printf("[%v] %s: %s exited %d\n", ts(tk), host, path, status)
	return nil
}

// controller dispatches the desired-state subcommands. `start` boots the
// HA heartbeat plane too (the controller's observed state is the view),
// so a script only needs one line before submitting apps.
func (s *session) controller(tk *sim.Task, cmd []string) error {
	switch cmd[0] {
	case "start":
		if len(cmd) < 2 {
			return fmt.Errorf("controller start wants a host")
		}
		if s.c.HA(cmd[1]) == nil {
			if err := s.c.StartHA(ha.Config{Interval: sim.Second}); err != nil {
				return err
			}
		}
		if _, err := s.c.StartController(cmd[1], controller.Config{}); err != nil {
			return err
		}
		fmt.Printf("[%v] controller running on %s\n", ts(tk), cmd[1])
	case "submit":
		if len(cmd) < 4 {
			return fmt.Errorf("controller submit wants name, path, replicas")
		}
		n, err := strconv.Atoi(cmd[3])
		if err != nil {
			return fmt.Errorf("bad replica count %q", cmd[3])
		}
		spec := controllerSpec(cmd[1], cmd[2], n)
		if len(cmd) > 4 {
			spec.Policy = cmd[4]
		}
		ctl := s.c.Controller()
		if ctl == nil {
			return fmt.Errorf("no controller running (use 'controller start')")
		}
		if err := ctl.Submit(spec); err != nil {
			return err
		}
		fmt.Printf("[%v] submitted app %s: %d × %s\n", ts(tk), cmd[1], n, cmd[2])
		tk.Yield()
	case "drain":
		if len(cmd) < 2 {
			return fmt.Errorf("controller drain wants a host")
		}
		if err := s.c.DrainHost(cmd[1]); err != nil {
			return err
		}
		fmt.Printf("[%v] draining %s\n", ts(tk), cmd[1])
	case "status":
		ctl := s.c.Controller()
		if ctl == nil {
			return fmt.Errorf("no controller running (use 'controller start')")
		}
		st := ctl.Status()
		conv := "converging"
		if st.Converged() {
			conv = "converged"
		}
		fmt.Printf("[%v] controller: round %d, %s\n", ts(tk), st.Round, conv)
		for _, a := range st.Apps {
			fmt.Printf("  app %-12s desired %d, live %d, pending %d (gen %d)\n",
				a.Name, a.Desired, a.Live, a.Pending, a.Gen)
			for _, r := range a.Replicas {
				fmt.Printf("    slot %d: %s pid %d %s\n", r.Slot, r.Host, r.PID, r.State)
			}
		}
		for _, d := range st.Drains {
			state := fmt.Sprintf("%d remaining", d.Remaining)
			if d.Done {
				state = fmt.Sprintf("done in %v", d.Makespan)
			}
			fmt.Printf("  drain %-10s %d waves, %d moved, %d failed, %s\n",
				d.Host, d.Waves, d.Moved, d.Failed, state)
		}
	default:
		return fmt.Errorf("unknown controller subcommand %q", cmd[0])
	}
	return nil
}

// controllerSpec builds the default migsim app spec: spread placement,
// no constraints — the script can exercise policy via the optional arg.
func controllerSpec(name, path string, n int) controller.AppSpec {
	return controller.AppSpec{Name: name, Path: path, Replicas: n}
}

func (s *session) exec(tk *sim.Task, cmd []string) error {
	need := func(n int) error {
		if len(cmd) < n+1 {
			return fmt.Errorf("wants %d argument(s)", n)
		}
		return nil
	}
	switch cmd[0] {
	case "run":
		if err := need(2); err != nil {
			return err
		}
		p, err := s.c.Spawn(cmd[1], nil, cluster.DefaultUser, cmd[2], cmd[3:]...)
		if err != nil {
			return err
		}
		s.pids = append(s.pids, p.PID)
		fmt.Printf("[%v] %s: started %s as pid %d ($%d)\n", ts(tk), cmd[1], cmd[2], p.PID, len(s.pids))
		tk.Yield()
	case "type":
		if err := need(2); err != nil {
			return err
		}
		s.c.Console(cmd[1]).Type(strings.Join(cmd[2:], " ") + "\n")
		tk.Yield()
	case "eof":
		if err := need(1); err != nil {
			return err
		}
		s.c.Console(cmd[1]).TypeEOF()
		tk.Yield()
	case "sleep":
		if err := need(1); err != nil {
			return err
		}
		sec, err := strconv.ParseFloat(cmd[1], 64)
		if err != nil {
			return err
		}
		if math.IsNaN(sec) || math.IsInf(sec, 0) || sec < 0 {
			return fmt.Errorf("bad duration %q", cmd[1])
		}
		tk.Sleep(sim.Duration(sec * float64(sim.Second)))
	case "ps":
		if err := need(1); err != nil {
			return err
		}
		m := s.c.Machine(cmd[1])
		if m == nil {
			return fmt.Errorf("no host %q", cmd[1])
		}
		fmt.Printf("[%v] %s: %5s %5s %5s %-9s %10s %10s  %s\n",
			ts(tk), cmd[1], "PID", "PPID", "UID", "STATE", "UTIME", "STIME", "CMD")
		for _, pi := range m.PS() {
			fmt.Printf("%*s %5d %5d %5d %-9s %10v %10v  %s\n",
				len(fmt.Sprintf("[%v] %s:", ts(tk), cmd[1])), "",
				pi.PID, pi.PPID, pi.UID, pi.State, pi.UTime, pi.STime, pi.Cmd)
		}
	case "kill":
		if err := need(2); err != nil {
			return err
		}
		pid, err := s.pid(cmd[2])
		if err != nil {
			return err
		}
		sig := kernel.SIGTERM
		if len(cmd) > 3 {
			n, err := strconv.Atoi(cmd[3])
			if err != nil {
				return err
			}
			sig = kernel.Signal(n)
		}
		if e := s.c.Machine(cmd[1]).Kill(kernel.Creds{}, pid, sig); e != 0 {
			return e
		}
		tk.Yield()
	case "dumpproc":
		if err := need(2); err != nil {
			return err
		}
		pid, err := s.pid(cmd[2])
		if err != nil {
			return err
		}
		return s.runAndWait(tk, cmd[1], "/bin/dumpproc", "-p", fmt.Sprint(pid))
	case "restart":
		if err := need(3); err != nil {
			return err
		}
		pid, err := s.pid(cmd[2])
		if err != nil {
			return err
		}
		return s.runAndWait(tk, cmd[1], "/bin/restart", "-p", fmt.Sprint(pid), "-h", cmd[3])
	case "migrate":
		if err := need(4); err != nil {
			return err
		}
		pid, err := s.pid(cmd[2])
		if err != nil {
			return err
		}
		return s.runAndWait(tk, cmd[1], "/bin/migrate",
			"-p", fmt.Sprint(pid), "-f", cmd[3], "-t", cmd[4])
	case "cat":
		if err := need(2); err != nil {
			return err
		}
		data, err := s.c.Machine(cmd[1]).NS().ReadFile(cmd[2])
		if err != nil {
			return err
		}
		fmt.Printf("[%v] %s:%s:\n%s", ts(tk), cmd[1], cmd[2], data)
		if len(data) > 0 && data[len(data)-1] != '\n' {
			fmt.Println()
		}
	case "tty":
		if err := need(1); err != nil {
			return err
		}
		fmt.Printf("[%v] %s console:\n%s", ts(tk), cmd[1], s.c.Console(cmd[1]).Output())
	case "trace":
		if err := need(2); err != nil {
			return err
		}
		m := s.c.Machine(cmd[1])
		if m == nil {
			return fmt.Errorf("no host %q", cmd[1])
		}
		m.SetTracing(cmd[2] == "on")
	case "tracelog":
		if err := need(1); err != nil {
			return err
		}
		m := s.c.Machine(cmd[1])
		if m == nil {
			return fmt.Errorf("no host %q", cmd[1])
		}
		fmt.Printf("[%v] %s kernel trace:\n", ts(tk), cmd[1])
		for _, e := range m.TraceLog() {
			fmt.Println("  " + e.String())
		}
		if n := m.TraceDropped(); n > 0 {
			fmt.Printf("  (%d older entries dropped past the %d-entry ring)\n",
				n, kernel.MaxTraceEntries)
		}
	case "controller":
		if err := need(1); err != nil {
			return err
		}
		return s.controller(tk, cmd[1:])
	case "metrics":
		if len(cmd) > 2 && cmd[1] == "-format" {
			if cmd[2] != "prom" {
				return fmt.Errorf("unknown metrics format %q (only prom)", cmd[2])
			}
			return obs.WriteProm(os.Stdout, s.c.Obs)
		}
		filter := ""
		if len(cmd) > 1 {
			filter = cmd[1]
		}
		fmt.Printf("[%v] metrics:\n", ts(tk))
		for _, r := range s.c.Obs.Snapshot() {
			if filter != "" && r.Host != filter {
				continue
			}
			if r.Detail != "" {
				fmt.Printf("  %-10s %-26s %s\n", r.Host, r.Name, r.Detail)
			} else {
				fmt.Printf("  %-10s %-26s %d\n", r.Host, r.Name, r.Value)
			}
		}
		if filter == "" {
			for _, r := range s.c.Obs.Totals() {
				if r.Detail != "" {
					fmt.Printf("  %-10s %-26s %s\n", "(total)", r.Name, r.Detail)
				} else {
					fmt.Printf("  %-10s %-26s %d\n", "(total)", r.Name, r.Value)
				}
			}
		}
	case "status":
		// The loss/occupancy dashboard: where observability itself is
		// degrading (trace rings overflowing, migd tables evicting) and
		// which hosts currently hold frozen processes.
		gauges := []string{
			"kernel.trace_dropped", "kernel.frozen",
			"migd.txn_table", "migd.txn_evicted",
			"migd.stream_table", "migd.stream_evicted",
			"load.dropped",
		}
		byHost := map[string]map[string]int64{}
		for _, r := range s.c.Obs.Snapshot() {
			for _, g := range gauges {
				if r.Name == g {
					if byHost[r.Host] == nil {
						byHost[r.Host] = map[string]int64{}
					}
					byHost[r.Host][g] = r.Value
				}
			}
		}
		fmt.Printf("[%v] status:\n", ts(tk))
		fmt.Printf("  %-10s %12s %8s %10s %12s %12s %14s %10s\n",
			"host", "trace_drops", "frozen", "txn_table", "txn_evicted", "stream_tbl", "stream_evicted", "load_drops")
		for _, hn := range s.c.Obs.Hosts() {
			g := byHost[hn]
			if g == nil {
				continue
			}
			fmt.Printf("  %-10s %12d %8d %10d %12d %12d %14d %10d\n",
				hn, g["kernel.trace_dropped"], g["kernel.frozen"],
				g["migd.txn_table"], g["migd.txn_evicted"],
				g["migd.stream_table"], g["migd.stream_evicted"], g["load.dropped"])
		}
	case "spans":
		fmt.Printf("[%v] spans:\n", ts(tk))
		for _, root := range s.c.Obs.Tracer.Roots() {
			for _, sp := range s.c.Obs.Tracer.Trace(root.Txn) {
				fmt.Println("  " + sp.String())
			}
		}
	case "timeline":
		if err := need(1); err != nil {
			return err
		}
		f, err := os.Create(cmd[1])
		if err != nil {
			return err
		}
		werr := obs.WriteTimelineObs(f, s.c.Obs, s.c.Obs.Tracer, s.c.Names())
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Printf("[%v] timeline written to %s\n", ts(tk), cmd[1])
	case "time":
		fmt.Printf("virtual time: %v\n", ts(tk))
	default:
		return fmt.Errorf("unknown command (see -help)")
	}
	return nil
}
