package controller

import (
	"sort"

	"procmig/internal/ha"
)

// Placement: choose a host for one replica. All inputs come from the
// round's view snapshot plus the controller's own bookkeeping; scoring is
// fully deterministic (ties break on host name) so the same seed places
// the same fleet the same way.

// cand is one placement candidate with its round-local scores.
type cand struct {
	host  string
	load  int // run-queue length from the heartbeat
	inApp int // replicas of the app being placed already here
	owned int // controller-owned replicas of any app here
}

// candidates fills c.candScratch with the hosts the spec may legally use
// right now: alive in the view, not cordoned (draining), admitted by the
// spec's allow/deny lists, and below the spec's per-host cap. exclude is
// an extra host to rule out (a migration source).
func (c *Controller) candidates(a *app, view []ha.Member, exclude string) []cand {
	perApp := c.countScratch
	for k := range perApp {
		delete(perApp, k)
	}
	for _, r := range a.replicas {
		perApp[r.host]++
	}
	max := a.spec.maxPerHost()
	out := c.candScratch[:0]
	for i := range view {
		m := &view[i]
		if !m.Alive || c.cordoned[m.Host] || m.Host == exclude || !a.spec.allowed(m.Host) {
			continue
		}
		in := perApp[m.Host]
		if max > 0 && in >= max {
			continue
		}
		out = append(out, cand{
			host: m.Host, load: m.Load, inApp: in, owned: c.ownedPerHost[m.Host],
		})
	}
	c.candScratch = out
	return out
}

// place picks the best candidate under the spec's policy, or "" when no
// host qualifies (placement pressure: every legal host is full or down).
func (c *Controller) place(a *app, view []ha.Member, exclude string) string {
	cands := c.candidates(a, view, exclude)
	if len(cands) == 0 {
		return ""
	}
	switch a.spec.Policy {
	case PolicyBinpack:
		// Densest first: most owned replicas, then least loaded (a packed
		// host that is also swamped is a bad bin), then name.
		sort.Slice(cands, func(i, j int) bool {
			a, b := &cands[i], &cands[j]
			if a.owned != b.owned {
				return a.owned > b.owned
			}
			if a.load != b.load {
				return a.load < b.load
			}
			return a.host < b.host
		})
	default: // PolicySpread
		// Emptiest first: fewest replicas of this app, then fewest owned
		// replicas overall, then least loaded, then name.
		sort.Slice(cands, func(i, j int) bool {
			a, b := &cands[i], &cands[j]
			if a.inApp != b.inApp {
				return a.inApp < b.inApp
			}
			if a.owned != b.owned {
				return a.owned < b.owned
			}
			if a.load != b.load {
				return a.load < b.load
			}
			return a.host < b.host
		})
	}
	return cands[0].host
}

// misplaced reports whether a live replica violates its spec's placement
// constraints where it currently sits: a denied/cordoned host, or an
// over-cap host (anti-affinity collision). over is precomputed per round:
// how many replicas above the cap each (app, host) pair carries.
func (c *Controller) misplaced(a *app, r *replica, over map[string]int) bool {
	if !a.spec.allowed(r.host) || c.cordoned[r.host] {
		return true
	}
	return over[r.host] > 0
}

// overCap counts, for app a, how many replicas each host carries beyond
// the per-host cap. The reconciler moves exactly that many; the ones
// within cap stay put (moving all of them would thrash).
func (a *app) overCap(dst map[string]int) map[string]int {
	for k := range dst {
		delete(dst, k)
	}
	max := a.spec.maxPerHost()
	if max <= 0 {
		return dst
	}
	for _, r := range a.replicas {
		dst[r.host]++
	}
	for h, n := range dst {
		if n > max {
			dst[h] = n - max
		} else {
			delete(dst, h)
		}
	}
	return dst
}

// chooseBuddy picks a guardian buddy for a replica: an alive,
// non-cordoned host other than the replica's own, carrying the fewest of
// the controller's existing protections (ties on name). Returns "" when
// the cluster has no second host to lean on.
func (c *Controller) chooseBuddy(r *replica, view []ha.Member) string {
	loads := c.countScratch
	for k := range loads {
		delete(loads, k)
	}
	for _, name := range c.appOrder {
		for _, rr := range c.apps[name].replicas {
			if rr.protBuddy != "" {
				loads[rr.protBuddy]++
			}
		}
	}
	best := ""
	bestN := 0
	for i := range view {
		m := &view[i]
		if !m.Alive || m.Host == r.host || c.cordoned[m.Host] {
			continue
		}
		n := loads[m.Host]
		if best == "" || n < bestN || (n == bestN && m.Host < best) {
			best, bestN = m.Host, n
		}
	}
	return best
}
