package controller

import (
	"fmt"
	"sort"

	"procmig/internal/errno"
	"procmig/internal/ha"
	"procmig/internal/obs"
	"procmig/internal/sim"
)

// Rolling operations: host drains and replace waves. Both are
// rate-limited — a wave of bounded size, a settle barrier, then the next
// wave — so maintenance never stampedes the network the way "migrate
// everything at once" would.

// drain tracks one rolling host drain.
type drain struct {
	host     string
	txn      uint32 // span trace id
	started  sim.Time
	waves    int
	moved    int
	failed   int
	done     bool
	finished sim.Time
	remain   int // owned replicas still on the host, as of the last round
}

func (d *drain) status() DrainStatus {
	st := DrainStatus{
		Host: d.host, StartedAt: d.started, Waves: d.waves,
		Moved: d.moved, Failed: d.failed, Remaining: d.remain, Done: d.done,
	}
	if d.done {
		st.Makespan = sim.Duration(d.finished - d.started)
	}
	return st
}

// drainFailReason buckets a failed drain move into a stable metric label —
// the same buckets the Balancer's balancer.failed.<reason> uses (the two
// packages cannot share the function without an import cycle through the
// policy layer).
func drainFailReason(err error) string {
	switch errno.Of(err) {
	case errno.ETIMEDOUT:
		return "timeout"
	case errno.EHOSTDOWN:
		return "host_down"
	case errno.ECONNREFUSED:
		return "refused"
	case errno.EPERM:
		return "denied"
	case errno.ESRCH:
		return "no_such_process"
	default:
		return "other"
	}
}

// drainFailCounter resolves (and caches) the per-reason failure counter.
// Engine tasks run one at a time, so the map needs no lock.
func (c *Controller) drainFailCounter(err error) *obs.Counter {
	reason := drainFailReason(err)
	ctr := c.mDrainFailBy[reason]
	if ctr == nil {
		ctr = c.scope.Counter("controller.drain_failed." + reason)
		c.mDrainFailBy[reason] = ctr
	}
	return ctr
}

// drainTxn synthesizes a stable trace id for one drain, disjoint from
// migration txn ids by construction (they hash time and pid; this hashes
// the host name and round).
func drainTxn(host string, round int64) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(host); i++ {
		h = (h ^ uint32(host[i])) * 16777619
	}
	h ^= uint32(round) * 2654435761
	if h == 0 {
		h = 1
	}
	return h
}

// Drain cordons host and starts migrating every controller-owned replica
// off it, DrainWave at a time. The cordon persists after the drain
// completes (the host is "in maintenance") until Uncordon.
func (c *Controller) Drain(host string) error {
	found := false
	for _, h := range c.act.Hosts() {
		if h == host {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("controller: drain of unknown host %q", host)
	}
	if d, ok := c.drains[host]; ok && !d.done {
		return fmt.Errorf("controller: %s is already draining", host)
	}
	var now sim.Time
	if c.eng != nil {
		now = c.eng.Now()
	}
	d := &drain{host: host, started: now, txn: drainTxn(host, c.round)}
	if _, ok := c.drains[host]; !ok {
		c.drainOrder = append(c.drainOrder, host)
	}
	c.drains[host] = d
	c.cordoned[host] = true
	c.convergeAt = 0
	if sp := c.tracer.Root(d.txn, "drain", host, 0, now); sp != nil {
		sp.Detail = "rolling drain"
	}
	return nil
}

// Uncordon lifts a host's cordon so placement may use it again. Any
// finished drain record for it is kept (Status history) but a live drain
// keeps going — uncordoning mid-drain only re-admits the host for new
// placements, it does not cancel the evacuation.
func (c *Controller) Uncordon(host string) { delete(c.cordoned, host) }

// Cordoned reports whether host is currently excluded from placement.
func (c *Controller) Cordoned(host string) bool { return c.cordoned[host] }

// DrainStatus reports one drain's progress (false if never started).
func (c *Controller) DrainStatus(host string) (DrainStatus, bool) {
	d, ok := c.drains[host]
	if !ok {
		return DrainStatus{}, false
	}
	return d.status(), ok
}

// drainStep runs one wave per active drain: pick up to DrainWave owned
// replicas still on the host, migrate them concurrently (each in its own
// engine task), and block until the wave settles before returning — the
// per-wave settle barrier. One wave per reconcile round is the rate
// limit; a 40-replica host under DrainWave=4 drains over 10 rounds.
func (c *Controller) drainStep(t *sim.Task, view []ha.Member, now sim.Time) {
	for _, host := range c.drainOrder {
		d := c.drains[host]
		if d.done {
			continue
		}
		// Collect the evacuees: bound replicas on the host, oldest slots
		// first for determinism. Beyond this wave's worth, collect the
		// next wave's worth too: if the actuator can prewarm, their pages
		// stream toward tentative destinations while this wave settles.
		type evac struct {
			a *app
			r *replica
		}
		var wave, next []evac
		remain := 0
		for _, name := range c.appOrder {
			a := c.apps[name]
			for _, r := range a.replicas {
				if r.host != host || r.state == repMoving {
					continue
				}
				remain++
				if len(wave) < c.cfg.DrainWave {
					wave = append(wave, evac{a, r})
				} else if len(next) < c.cfg.DrainWave {
					next = append(next, evac{a, r})
				}
			}
		}
		d.remain = remain
		if remain == 0 {
			d.done = true
			d.finished = now
			if sp := c.tracer.Root(d.txn, "drain", host, 0, now); sp != nil {
				sp.EndDetail(now, fmt.Sprintf("moved=%d failed=%d waves=%d", d.moved, d.failed, d.waves))
			}
			continue
		}
		// A dead host needs no evacuation — judge() replaces its replicas
		// through the normal dead-host path; stalling migrations against
		// it would just burn network timeouts. The drain resumes if the
		// host comes back before emptying.
		if !c.hostAlive(host) {
			continue
		}

		// Resolve destinations first: a wave with nowhere to go is not a
		// wave (counting it would flood spans while placement pressure
		// persists), just a stuck marker retried next round. The binding
		// is tentatively moved to the destination at selection time so
		// the next evacuee's placement counts it there — two replicas of
		// an anti-affinity app must not pick the same refuge.
		type move struct {
			r        *replica
			src, dst string
			pid      int
		}
		var moves []move
		for _, ev := range wave {
			dst := c.place(ev.a, view, host)
			if dst == "" {
				c.mDrainStuck.Inc()
				continue
			}
			ev.r.state = repMoving
			ev.r.since = now
			moves = append(moves, move{r: ev.r, src: ev.r.host, dst: dst, pid: ev.r.pid})
			ev.r.host = dst
		}
		if len(moves) == 0 {
			continue
		}
		d.waves++
		c.mDrainWave.Inc()
		waveSpan := c.tracer.Child(d.txn, fmt.Sprintf("wave %d", d.waves), host, 0, now)
		pending := 0
		for i := range moves {
			mv := moves[i]
			pending++
			c.eng.Go(fmt.Sprintf("drain:%s:%d", mv.src, mv.pid), func(wt *sim.Task) {
				defer func() { pending-- }()
				newPid, err := c.act.Migrate(wt, mv.src, mv.pid, mv.dst)
				r := mv.r
				if err != nil {
					c.mDrainFail.Inc()
					c.drainFailCounter(err).Inc()
					d.failed++
					r.host = mv.src // still on the host; next wave retries
					r.state = repLive
					return
				}
				c.disown(mv.src, mv.pid)
				if newPid == 0 {
					// Committed but the reply carrying the new pid was
					// lost; the OldPID chain will reveal the successor.
					r.stale = true
					c.own(mv.dst, mv.pid)
				} else {
					r.pid = newPid
					r.stale = false
					c.own(mv.dst, newPid)
				}
				r.state = repPending
				r.since, r.seen = wt.Now(), wt.Now()
				r.downAt = 0
				r.protHost, r.protPID, r.protBuddy = "", 0, ""
				c.mDrainMove.Inc()
				d.moved++
			})
		}
		// Pipelined pre-copy: while this wave settles, stream the next
		// wave's pages toward tentative destinations so their real
		// migrations mostly ship refs. Placement here is a guess (nothing
		// binds — the wave re-places when it actually runs), which is fine:
		// identical replicas share content, so warming any store the next
		// wave plausibly lands near still pays. The settle barrier below
		// covers these tasks too, so freeze/commit always waits for them.
		prewarmed := 0
		if pw, ok := c.act.(Prewarmer); ok {
			for _, ev := range next {
				dst := c.place(ev.a, view, host)
				if dst == "" {
					continue
				}
				src, pid := ev.r.host, ev.r.pid
				pending++
				prewarmed++
				c.eng.Go(fmt.Sprintf("prewarm:%s:%d", src, pid), func(wt *sim.Task) {
					defer func() { pending-- }()
					// Best effort; a failure just skips the warmup. Only a
					// warmup that actually streamed counts — an actuator
					// declining (raw mode, no destination store) is not a
					// prewarm, and baselines must report zero.
					if warmed, _ := pw.Prewarm(wt, src, pid, dst); warmed {
						c.mDrainPrewarm.Inc()
					}
				})
			}
		}
		// Settle barrier: the round does not proceed (and the next wave
		// cannot start) until every migration in this wave has finished.
		for pending > 0 {
			t.Sleep(c.cfg.Period / 4)
		}
		waveSpan.EndDetail(t.Now(), fmt.Sprintf("launched=%d prewarmed=%d", len(moves), prewarmed))
	}
}

// replaceStep advances one rolling replace for app a: when a Replace has
// bumped the generation, restart up to ReplaceWave stale replicas.
// The settle barrier between waves is implicit: a wave only starts while
// the app has no pending replicas, so the previous wave's restarts must
// have been seen alive in beacons first.
func (c *Controller) replaceStep(t *sim.Task, a *app, view []ha.Member, now sim.Time, budget int) int {
	var stale []*replica
	for _, r := range a.replicas {
		if r.gen != a.gen {
			stale = append(stale, r)
		}
		if r.state == repPending {
			return budget // settle barrier: wait for the last wave to land
		}
	}
	if len(stale) == 0 {
		return budget
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i].slot < stale[j].slot })
	if len(stale) > c.cfg.ReplaceWave {
		stale = stale[:c.cfg.ReplaceWave]
	}
	c.mReplaceWave.Inc()
	txn := drainTxn(a.spec.Name+"#replace", int64(a.gen))
	root := c.tracer.Root(txn, "replace", c.Host, 0, now)
	for _, r := range stale {
		if budget <= 0 {
			break
		}
		if r.state == repLive && c.hostAlive(r.host) {
			if err := c.act.Kill(t, r.host, r.pid); err != nil {
				continue
			}
		}
		sp := c.tracer.Child(txn, "restart", r.host, r.pid, now)
		c.drop(a, r)
		host := c.place(a, view, "")
		if host == "" {
			sp.EndDetail(t.Now(), "no placement")
			budget--
			continue // slot becomes a deficit; spawned when capacity returns
		}
		pid, err := c.act.Spawn(t, host, a.spec.Path)
		if err != nil {
			c.mSpawnFail.Inc()
			sp.EndDetail(t.Now(), "spawn failed")
			budget--
			continue
		}
		nr := &replica{
			slot: a.nextSlot, gen: a.gen, host: host, pid: pid,
			state: repPending, since: t.Now(), seen: t.Now(),
		}
		a.nextSlot++
		a.replicas = append(a.replicas, nr)
		c.own(host, pid)
		c.mReplaced.Inc()
		sp.EndDetail(t.Now(), fmt.Sprintf("%s/%d -> %s/%d", r.host, r.pid, host, pid))
		budget--
	}
	staleLeft := 0
	for _, r := range a.replicas {
		if r.gen != a.gen {
			staleLeft++
		}
	}
	if staleLeft == 0 {
		root.EndDetail(t.Now(), fmt.Sprintf("gen %d complete", a.gen))
	}
	return budget
}
