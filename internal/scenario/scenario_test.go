package scenario_test

import (
	"path/filepath"
	"reflect"
	"testing"

	"procmig/internal/experiments"
	"procmig/internal/scenario"
	"procmig/internal/sim"
)

// --- chaos smoke --------------------------------------------------------------

// TestChaosSeeds runs the generated chaos scenario for a handful of seeds:
// every invariant must hold on every run, and a fixed seed must reproduce
// the identical result.
func TestChaosSeeds(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		sc := scenario.Chaos(seed)
		res, err := scenario.Run(sc)
		if err != nil {
			t.Fatalf("chaos seed %d: %v", seed, err)
		}
		if !res.Passed() {
			t.Fatalf("chaos seed %d: %v", seed, res.FirstViolation())
		}
		if len(res.Migrations) == 0 {
			t.Errorf("chaos seed %d: no migrations ran — generator produced a dull schedule", seed)
		}
		if len(res.Recoveries) != 1 {
			t.Errorf("chaos seed %d: %d recoveries, want exactly 1", seed, len(res.Recoveries))
		}
	}
}

func TestChaosDeterministic(t *testing.T) {
	a, err := scenario.Run(scenario.Chaos(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := scenario.Run(scenario.Chaos(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

// TestScenarioJSONRoundTrip: a chaos scenario survives Encode/Decode —
// the artifact format carries the full schedule.
func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := scenario.Chaos(42)
	raw, err := sc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := scenario.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, back) {
		t.Fatal("scenario did not survive the JSON round trip")
	}
}

// --- A7/A8 equivalence --------------------------------------------------------

// TestA7TableEquivalence holds the scenario re-expression of A7 to the
// hand-coded sweep: same seed, same per-cell outcomes, bit for bit.
func TestA7TableEquivalence(t *testing.T) {
	const seed = 1
	pts, err := experiments.A7FaultSweep(seed)
	if err != nil {
		t.Fatal(err)
	}
	tables := scenario.A7Tables(seed)
	if len(tables) != len(pts) {
		t.Fatalf("%d tables vs %d sweep cells", len(tables), len(pts))
	}
	for i, sc := range tables {
		pt := pts[i]
		res, err := scenario.Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if !res.Passed() {
			t.Fatalf("%s: %v", sc.Name, res.FirstViolation())
		}
		if len(res.Migrations) != 1 {
			t.Fatalf("%s: %d migrations, want 1", sc.Name, len(res.Migrations))
		}
		mig, wl := res.Migrations[0], res.Workloads["hog"]
		if mig.Committed != pt.Committed || wl.Migrated != pt.Migrated || wl.LiveCopies != pt.LiveCopies {
			t.Errorf("%s: committed/migrated/live = %v/%v/%d, sweep says %v/%v/%d",
				sc.Name, mig.Committed, wl.Migrated, wl.LiveCopies,
				pt.Committed, pt.Migrated, pt.LiveCopies)
		}
		if mig.Total != pt.Total || mig.Freeze != pt.Freeze {
			t.Errorf("%s: total/freeze = %v/%v, sweep says %v/%v — the runs diverged",
				sc.Name, mig.Total, mig.Freeze, pt.Total, pt.Freeze)
		}
	}
}

// TestA8TableEquivalence: same for the recovery sweep.
func TestA8TableEquivalence(t *testing.T) {
	const seed = 1
	pts, err := experiments.A8FaultSweep(seed)
	if err != nil {
		t.Fatal(err)
	}
	tables := scenario.A8Tables(seed)
	if len(tables) != len(pts) {
		t.Fatalf("%d tables vs %d sweep cells", len(tables), len(pts))
	}
	for i, sc := range tables {
		pt := pts[i]
		res, err := scenario.Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if !res.Passed() {
			t.Fatalf("%s: %v", sc.Name, res.FirstViolation())
		}
		if len(res.Recoveries) != 1 {
			t.Fatalf("%s: %d recoveries, want 1", sc.Name, len(res.Recoveries))
		}
		rec, wl := res.Recoveries[0], res.Workloads["hog"]
		if rec.Checkpoints != pt.Checkpoints || rec.Resumed != pt.Resumed || wl.LiveCopies != pt.LiveCopies {
			t.Errorf("%s: ckpts/resumed/live = %d/%v/%d, sweep says %d/%v/%d",
				sc.Name, rec.Checkpoints, rec.Resumed, wl.LiveCopies,
				pt.Checkpoints, pt.Resumed, pt.LiveCopies)
		}
		if rec.Recovery != pt.Recovery || rec.LostWork != pt.LostWork {
			t.Errorf("%s: recovery/lostwork = %v/%v, sweep says %v/%v — the runs diverged",
				sc.Name, rec.Recovery, rec.LostWork, pt.Recovery, pt.LostWork)
		}
	}
}

// --- negative tests: each invariant must catch its deliberate violation ------

// negBase is a quiet two-workload cluster the injections land on.
func negBase() *scenario.Scenario {
	return &scenario.Scenario{
		Name:  "neg",
		Seed:  5,
		Hosts: []string{"alpha", "beta", "gamma"},
		Workloads: []scenario.Workload{
			{Name: "hog", Host: "alpha", Prog: "hog", TotalBytes: 32 << 10, WSBytes: 4 << 10},
		},
		Events: []scenario.Event{
			{Op: "await_ready", Workload: "hog"},
			{Op: "sleep", Dur: 2 * sim.Second},
		},
	}
}

// expectViolation runs the scenario and asserts the first violation names
// the right invariant at the right event index.
func expectViolation(t *testing.T, sc *scenario.Scenario, invariant string, eventIndex int) *scenario.Result {
	t.Helper()
	res, err := scenario.Run(sc)
	if err != nil {
		t.Fatalf("%s: %v", sc.Name, err)
	}
	v := res.FirstViolation()
	if v == nil {
		t.Fatalf("%s: expected a %s violation, run passed", sc.Name, invariant)
	}
	if v.Invariant != invariant || v.EventIndex != eventIndex {
		t.Fatalf("%s: first violation %v, want %s at event %d", sc.Name, v, invariant, eventIndex)
	}
	if eventIndex >= 0 && res.Events != eventIndex+1 {
		t.Errorf("%s: runner executed %d events, want it to stop right after event %d",
			sc.Name, res.Events, eventIndex)
	}
	return res
}

func TestNegativeLiveCopy(t *testing.T) {
	sc := negBase()
	sc.Name = "neg-live-copy"
	sc.Events = append(sc.Events, scenario.Event{Op: "inject_dup", Workload: "hog", Host: "beta"})
	expectViolation(t, sc, "live-copy", 2)
}

func TestNegativeConservation(t *testing.T) {
	sc := negBase()
	sc.Name = "neg-conservation"
	sc.Events = append(sc.Events, scenario.Event{Op: "inject_kill", Workload: "hog"})
	expectViolation(t, sc, "conservation", 2)
}

func TestNegativeCounterMonotonic(t *testing.T) {
	sc := negBase()
	sc.Name = "neg-counter"
	// Two bumps: the first registers the probe counter with the checker,
	// the second moves it backwards.
	sc.Events = append(sc.Events,
		scenario.Event{Op: "counter_bump", Host: "alpha", N: 10},
		scenario.Event{Op: "counter_bump", Host: "alpha", N: -5},
	)
	expectViolation(t, sc, "counter-monotonic", 3)
}

// TestNegativeSplitBrain: a full partition between a protected process
// and its buddy defeats arbitration — the probe cannot reach the live
// source, the guardian restarts it anyway, and the checker must call the
// resulting second copy a split brain.
func TestNegativeSplitBrain(t *testing.T) {
	sc := &scenario.Scenario{
		Name:  "neg-split-brain",
		Seed:  5,
		Hosts: []string{"alpha", "beta", "gamma"},
		HA:    &scenario.HAConfig{Interval: sim.Second, CkptInterval: 2 * sim.Second},
		Workloads: []scenario.Workload{
			{Name: "hog", Host: "alpha", Prog: "counterhog", TotalBytes: 32 << 10, WSBytes: 4 << 10},
		},
		Events: []scenario.Event{
			{Op: "await_ready", Workload: "hog"},
			{Op: "protect", Workload: "hog", To: "beta"},
			{Op: "await_ckpt", Workload: "hog", N: 2},
			{Op: "partition", Groups: [][]string{{"alpha"}, {"beta", "gamma"}}},
			{Op: "sleep", Dur: 45 * sim.Second},
		},
		// The split-brain verdict is the point; the duplicate copy and the
		// divergent membership views are its side effects.
		Invariants: scenario.Invariants{SkipLiveCopy: true, SkipMembership: true},
	}
	expectViolation(t, sc, "split-brain", 4)
}

// TestNegativeMembership: a crash with no settle time leaves the
// survivors still believing the dead host is alive at quiesce.
func TestNegativeMembership(t *testing.T) {
	sc := &scenario.Scenario{
		Name:  "neg-membership",
		Seed:  5,
		Hosts: []string{"alpha", "beta", "gamma"},
		HA:    &scenario.HAConfig{Interval: sim.Second},
		Events: []scenario.Event{
			{Op: "sleep", Dur: 10 * sim.Second}, // converge first
			{Op: "crash", Host: "gamma"},
		},
	}
	expectViolation(t, sc, "membership", -1)
}

// --- replay artifact ----------------------------------------------------------

// TestArtifactReplay: a failing run emits an artifact that replays to the
// same violation through the JSON round trip.
func TestArtifactReplay(t *testing.T) {
	sc := negBase()
	sc.Name = "neg-artifact"
	sc.Events = append(sc.Events, scenario.Event{Op: "inject_dup", Workload: "hog", Host: "beta"})
	res, err := scenario.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	art := scenario.NewArtifact(sc, res)
	if art == nil {
		t.Fatal("failing run produced no artifact")
	}
	path := filepath.Join(t.TempDir(), "replay.json")
	if err := art.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := scenario.LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := back.Replay()
	if err != nil {
		t.Fatal(err)
	}
	v1, v2 := res.FirstViolation(), res2.FirstViolation()
	if v2 == nil || v1.Invariant != v2.Invariant || v1.EventIndex != v2.EventIndex || v1.At != v2.At {
		t.Fatalf("replayed violation %v, original %v", v2, v1)
	}
	if scenario.NewArtifact(sc, res2) == nil {
		t.Fatal("replay of a failing artifact passed")
	}
}

// --- controller ops -----------------------------------------------------------

// ctlBase is a four-host cluster with a controller on alpha and one
// three-replica app ready to submit.
func ctlBase() *scenario.Scenario {
	return &scenario.Scenario{
		Name:       "ctl",
		Seed:       5,
		Hosts:      []string{"alpha", "beta", "gamma", "delta"},
		HA:         &scenario.HAConfig{Interval: sim.Second},
		Controller: &scenario.ControllerConfig{Host: "alpha", Period: 2 * sim.Second},
		Apps: []scenario.App{
			{Name: "web", Prog: "hog", TotalBytes: 32 << 10, WSBytes: 4 << 10, Replicas: 3},
		},
	}
}

// TestScenarioControllerDrain: submit an app, converge, drain a host the
// app landed on, and hold every invariant — including the new
// replicas-converged check — at quiesce. The drained host must end with
// zero replicas while the count stays at desired.
func TestScenarioControllerDrain(t *testing.T) {
	sc := ctlBase()
	sc.Name = "ctl-drain"
	// One replica per host, four hosts, three replicas: whichever host
	// stays free is the headroom the drain needs to be feasible.
	sc.Apps[0].AntiAffinity = true
	sc.Events = []scenario.Event{
		{Op: "sleep", Dur: 5 * sim.Second}, // membership converges
		{Op: "submit_app", App: "web"},
		{Op: "await_converged"},
		{Op: "drain_host", Host: "delta"},
		{Op: "await_converged"},
	}
	sc.Settle = 5 * sim.Second
	res, err := scenario.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatal(res.FirstViolation())
	}
	ao := res.Apps["web"]
	if ao == nil || ao.Running != 3 {
		t.Fatalf("app outcome = %+v, want 3 running", ao)
	}
	if ao.Hosts["delta"] != 0 {
		t.Fatalf("drained host still runs %d replicas: %+v", ao.Hosts["delta"], ao.Hosts)
	}
}

// TestNegativeReplicasConverged: with the reconcile loop stopped, a
// replica killed off the books stays dead — the replicas-converged
// invariant must call out the deficit at quiesce.
func TestNegativeReplicasConverged(t *testing.T) {
	sc := ctlBase()
	sc.Name = "neg-replicas"
	sc.Events = []scenario.Event{
		{Op: "sleep", Dur: 5 * sim.Second},
		{Op: "submit_app", App: "web"},
		{Op: "await_converged"},
		{Op: "controller_stop"},
		{Op: "app_kill", App: "web"},
		{Op: "sleep", Dur: 3 * sim.Second},
	}
	expectViolation(t, sc, "replicas-converged", -1)
}

// TestControllerOpValidation: controller ops without a controller, apps
// without a controller, and unknown app names are all rejected before
// the cluster boots.
func TestControllerOpValidation(t *testing.T) {
	sc := negBase()
	sc.Events = append(sc.Events, scenario.Event{Op: "drain_host", Host: "beta"})
	if _, err := scenario.Run(sc); err == nil {
		t.Fatal("drain_host without a controller accepted")
	}

	sc2 := ctlBase()
	sc2.Events = []scenario.Event{{Op: "submit_app", App: "nope"}}
	if _, err := scenario.Run(sc2); err == nil {
		t.Fatal("submit_app with unknown app accepted")
	}

	sc3 := ctlBase()
	sc3.HA = nil
	sc3.Events = []scenario.Event{{Op: "submit_app", App: "web"}}
	if _, err := scenario.Run(sc3); err == nil {
		t.Fatal("controller without ha accepted")
	}

	sc4 := negBase()
	sc4.Apps = []scenario.App{{Name: "web", Prog: "hog", Replicas: 1}}
	if _, err := scenario.Run(sc4); err == nil {
		t.Fatal("apps without a controller accepted")
	}

	sc5 := ctlBase()
	sc5.Apps[0].Replicas = 0
	sc5.Events = []scenario.Event{{Op: "submit_app", App: "web"}}
	if _, err := scenario.Run(sc5); err == nil {
		t.Fatal("zero-replica app spec accepted")
	}
}

// TestDecodeRejectsUnknownFields: a typo'd field in a scenario file must
// fail the decode, not silently drop a parameter of the schedule.
func TestDecodeRejectsUnknownFields(t *testing.T) {
	good := []byte(`{"name":"x","seed":1,"hosts":["a"],"workloads":null,"events":[{"op":"sleep","dur":5}]}`)
	if _, err := scenario.Decode(good); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	bad := []byte(`{"name":"x","seed":1,"hosts":["a"],"events":[{"op":"sleep","duur":5}]}`)
	if _, err := scenario.Decode(bad); err == nil {
		t.Fatal("unknown event field accepted")
	}
	bad2 := []byte(`{"name":"x","hosts":["a"],"controler":{"host":"a"},"events":[]}`)
	if _, err := scenario.Decode(bad2); err == nil {
		t.Fatal("unknown top-level field accepted")
	}
}

// TestUnknownOpFailsLoudly: schedule typos must be rejected before the
// cluster even boots, not silently skipped.
func TestUnknownOpFailsLoudly(t *testing.T) {
	sc := negBase()
	sc.Events = append(sc.Events, scenario.Event{Op: "mitgrate", Workload: "hog", To: "beta"})
	if _, err := scenario.Run(sc); err == nil {
		t.Fatal("unknown op accepted")
	}
	sc2 := negBase()
	sc2.Events = []scenario.Event{{Op: "protect", Workload: "hog", To: "beta"}}
	if _, err := scenario.Run(sc2); err == nil {
		t.Fatal("protect without ha accepted")
	}
}
