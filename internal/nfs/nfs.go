// Package nfs implements the Sun Network Filesystem analogue the paper's
// environment depends on: a server exporting one machine's local disk, and
// a client implementing the vfs.BaseFS interface over the simulated
// Ethernet, so another machine can mount the export in its namespace (by
// the paper's convention, machine X's root appears everywhere as /n/X).
//
// Faithful to real NFS, the server exports the *local disk* filesystem
// only: mounts in the server's namespace are not crossed, so a mount-point
// directory looks empty through NFS. Symlinks are returned to the client
// for resolution (see the vfs package for how that reproduces the paper's
// /n/classic/n/brador failure).
package nfs

import (
	"bytes"
	"encoding/gob"

	"procmig/internal/errno"
	"procmig/internal/netsim"
	"procmig/internal/sim"
	"procmig/internal/vfs"
)

// Port is the NFS service port.
const Port = 2049

type request struct {
	Op    string
	Node  vfs.NodeID
	Node2 vfs.NodeID
	Name  string
	Name2 string
	Mode  uint16
	UID   int
	GID   int
	Dev   vfs.DevID
	Off   int64
	Len   int
	Size  int64
	Data  []byte
}

type response struct {
	Err     errno.Errno
	Node    vfs.NodeID
	Attr    vfs.Attr
	Target  string
	Dirents []vfs.Dirent
	Data    []byte
	N       int
}

func encode(v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic("nfs: encode: " + err.Error())
	}
	return buf.Bytes()
}

func decode(raw []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(raw)).Decode(v)
}

// ServerCosts models server-side work per operation.
type ServerCosts struct {
	OpCPU       sim.Duration // request decode + fs work
	DiskLatency sim.Duration // charged on data-carrying ops
	DiskPerByte sim.Duration
}

// Serve exports fs on host's NFS port. cpu, if non-nil, is the server
// machine's CPU resource; costs are charged per operation.
func Serve(host *netsim.Host, fs vfs.BaseFS, cpu *sim.Resource, costs ServerCosts) error {
	return host.Listen(Port, func(t *sim.Task, raw []byte) []byte {
		var req request
		if err := decode(raw, &req); err != nil {
			return encode(&response{Err: errno.EINVAL})
		}
		if cpu != nil && t != nil && costs.OpCPU > 0 {
			cpu.Use(t, costs.OpCPU, nil)
		}
		resp := serveOp(fs, &req)
		if t != nil && (req.Op == "read" || req.Op == "write") {
			n := len(resp.Data) + len(req.Data)
			t.Sleep(costs.DiskLatency + sim.Duration(n)*costs.DiskPerByte)
		}
		return encode(resp)
	})
}

func serveOp(fs vfs.BaseFS, req *request) *response {
	resp := &response{}
	fail := func(err error) *response {
		resp.Err = errno.Of(err)
		return resp
	}
	switch req.Op {
	case "root":
		resp.Node = fs.Root()
	case "lookup":
		n, a, err := fs.Lookup(req.Node, req.Name)
		if err != nil {
			return fail(err)
		}
		resp.Node, resp.Attr = n, a
	case "getattr":
		a, err := fs.Getattr(req.Node)
		if err != nil {
			return fail(err)
		}
		resp.Attr = a
	case "setmode":
		if err := fs.Setmode(req.Node, req.Mode); err != nil {
			return fail(err)
		}
	case "readlink":
		tgt, err := fs.Readlink(req.Node)
		if err != nil {
			return fail(err)
		}
		resp.Target = tgt
	case "create":
		n, err := fs.Create(req.Node, req.Name, req.Mode, req.UID, req.GID)
		if err != nil {
			return fail(err)
		}
		resp.Node = n
	case "mkdir":
		n, err := fs.Mkdir(req.Node, req.Name, req.Mode, req.UID, req.GID)
		if err != nil {
			return fail(err)
		}
		resp.Node = n
	case "symlink":
		if err := fs.Symlink(req.Node, req.Name, req.Name2, req.UID, req.GID); err != nil {
			return fail(err)
		}
	case "mknod":
		n, err := fs.Mknod(req.Node, req.Name, req.Dev, req.Mode, req.UID, req.GID)
		if err != nil {
			return fail(err)
		}
		resp.Node = n
	case "remove":
		if err := fs.Remove(req.Node, req.Name); err != nil {
			return fail(err)
		}
	case "rename":
		if err := fs.Rename(req.Node, req.Name, req.Node2, req.Name2); err != nil {
			return fail(err)
		}
	case "readdir":
		ents, err := fs.ReadDir(req.Node)
		if err != nil {
			return fail(err)
		}
		resp.Dirents = ents
	case "read":
		data, err := fs.ReadAt(req.Node, req.Off, req.Len)
		if err != nil {
			return fail(err)
		}
		resp.Data = data
	case "write":
		n, err := fs.WriteAt(req.Node, req.Off, req.Data)
		if err != nil {
			return fail(err)
		}
		resp.N = n
	case "truncate":
		if err := fs.Truncate(req.Node, req.Size); err != nil {
			return fail(err)
		}
	default:
		resp.Err = errno.EINVAL
	}
	return resp
}

// Client accesses a remote export as a vfs.BaseFS. Calls run in the
// ambient engine task (free during setup, charged inside the simulation).
type Client struct {
	host   *netsim.Host
	server string
	root   vfs.NodeID
	gotRt  bool
}

// NewClient mounts-side handle for server's export, calling from host.
func NewClient(host *netsim.Host, server string) *Client {
	return &Client{host: host, server: server}
}

// Server reports the server host name.
func (c *Client) Server() string { return c.server }

func (c *Client) call(req *request) (*response, error) {
	raw, err := c.host.Call(nil, c.server, Port, encode(req))
	if err != nil {
		return nil, err
	}
	var resp response
	if err := decode(raw, &resp); err != nil {
		return nil, errno.EIO
	}
	if resp.Err != 0 {
		return nil, resp.Err
	}
	return &resp, nil
}

// Root implements vfs.BaseFS. The root handle is fetched once and cached;
// if the server is unreachable at first use, the MemFS convention (node 1)
// is assumed and the next real operation reports the error.
func (c *Client) Root() vfs.NodeID {
	if !c.gotRt {
		if resp, err := c.call(&request{Op: "root"}); err == nil {
			c.root = resp.Node
			c.gotRt = true
		} else {
			return 1
		}
	}
	return c.root
}

// Lookup implements vfs.BaseFS.
func (c *Client) Lookup(dir vfs.NodeID, name string) (vfs.NodeID, vfs.Attr, error) {
	resp, err := c.call(&request{Op: "lookup", Node: dir, Name: name})
	if err != nil {
		return 0, vfs.Attr{}, err
	}
	return resp.Node, resp.Attr, nil
}

// Getattr implements vfs.BaseFS.
func (c *Client) Getattr(n vfs.NodeID) (vfs.Attr, error) {
	resp, err := c.call(&request{Op: "getattr", Node: n})
	if err != nil {
		return vfs.Attr{}, err
	}
	return resp.Attr, nil
}

// Setmode implements vfs.BaseFS.
func (c *Client) Setmode(n vfs.NodeID, mode uint16) error {
	_, err := c.call(&request{Op: "setmode", Node: n, Mode: mode})
	return err
}

// Readlink implements vfs.BaseFS.
func (c *Client) Readlink(n vfs.NodeID) (string, error) {
	resp, err := c.call(&request{Op: "readlink", Node: n})
	if err != nil {
		return "", err
	}
	return resp.Target, nil
}

// Create implements vfs.BaseFS.
func (c *Client) Create(dir vfs.NodeID, name string, mode uint16, uid, gid int) (vfs.NodeID, error) {
	resp, err := c.call(&request{Op: "create", Node: dir, Name: name, Mode: mode, UID: uid, GID: gid})
	if err != nil {
		return 0, err
	}
	return resp.Node, nil
}

// Mkdir implements vfs.BaseFS.
func (c *Client) Mkdir(dir vfs.NodeID, name string, mode uint16, uid, gid int) (vfs.NodeID, error) {
	resp, err := c.call(&request{Op: "mkdir", Node: dir, Name: name, Mode: mode, UID: uid, GID: gid})
	if err != nil {
		return 0, err
	}
	return resp.Node, nil
}

// Symlink implements vfs.BaseFS.
func (c *Client) Symlink(dir vfs.NodeID, name, target string, uid, gid int) error {
	_, err := c.call(&request{Op: "symlink", Node: dir, Name: name, Name2: target, UID: uid, GID: gid})
	return err
}

// Mknod implements vfs.BaseFS.
func (c *Client) Mknod(dir vfs.NodeID, name string, dev vfs.DevID, mode uint16, uid, gid int) (vfs.NodeID, error) {
	resp, err := c.call(&request{Op: "mknod", Node: dir, Name: name, Dev: dev, Mode: mode, UID: uid, GID: gid})
	if err != nil {
		return 0, err
	}
	return resp.Node, nil
}

// Remove implements vfs.BaseFS.
func (c *Client) Remove(dir vfs.NodeID, name string) error {
	_, err := c.call(&request{Op: "remove", Node: dir, Name: name})
	return err
}

// Rename implements vfs.BaseFS.
func (c *Client) Rename(olddir vfs.NodeID, oldname string, newdir vfs.NodeID, newname string) error {
	_, err := c.call(&request{Op: "rename", Node: olddir, Name: oldname, Node2: newdir, Name2: newname})
	return err
}

// ReadDir implements vfs.BaseFS.
func (c *Client) ReadDir(n vfs.NodeID) ([]vfs.Dirent, error) {
	resp, err := c.call(&request{Op: "readdir", Node: n})
	if err != nil {
		return nil, err
	}
	return resp.Dirents, nil
}

// ReadAt implements vfs.BaseFS.
func (c *Client) ReadAt(n vfs.NodeID, off int64, ln int) ([]byte, error) {
	resp, err := c.call(&request{Op: "read", Node: n, Off: off, Len: ln})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// WriteAt implements vfs.BaseFS.
func (c *Client) WriteAt(n vfs.NodeID, off int64, data []byte) (int, error) {
	resp, err := c.call(&request{Op: "write", Node: n, Off: off, Data: data})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// Truncate implements vfs.BaseFS.
func (c *Client) Truncate(n vfs.NodeID, size int64) error {
	_, err := c.call(&request{Op: "truncate", Node: n, Size: size})
	return err
}

var _ vfs.BaseFS = (*Client)(nil)
