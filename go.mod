module procmig

go 1.22
