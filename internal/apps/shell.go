package apps

import (
	"fmt"
	"strings"

	"procmig/internal/kernel"
)

// ProgShell is a small login shell, so the paper's user interactions
// (§4.2) can be typed at a simulated terminal verbatim. It supports
// /bin command lookup, absolute paths, `&` backgrounding, and the
// builtins cd, pwd, jobs and exit. Commands that overlay themselves via
// rest_proc (restart) are treated as complete once migrated, like
// everywhere else.
const ProgShell = "sh"

// ShellPrograms returns the shell for registration.
func ShellPrograms() map[string]kernel.HostedProg {
	return map[string]kernel.HostedProg{ProgShell: ShellMain}
}

// ShellMain implements the shell.
func ShellMain(sys *kernel.Sys, args []string) int {
	type job struct {
		pid int
		cmd string
	}
	var jobs []job
	print := func(s string) { sys.Write(1, []byte(s)) }

	readLine := func() (string, bool) {
		var line []byte
		for {
			chunk, e := sys.Read(0, 256)
			if e != 0 {
				return "", false // interrupted or error: give up cleanly
			}
			if len(chunk) == 0 {
				return string(line), false // EOF
			}
			line = append(line, chunk...)
			if line[len(line)-1] == '\n' {
				return strings.TrimRight(string(line), "\n"), true
			}
		}
	}

	// reapBackground collects finished background jobs, non-blockingly:
	// a zombie child is reaped by Wait without blocking only if one
	// exists, so check the process table first.
	reapBackground := func() {
		for {
			reaped := false
			for i, j := range jobs {
				p, ok := sys.Machine().FindProc(j.pid)
				if ok && p.State == kernel.ProcRunning {
					continue
				}
				// Zombie (or gone): reap it.
				if ok {
					pid, status, e := sys.Wait()
					if e != 0 {
						break
					}
					print(fmt.Sprintf("[%s done, status %d]\n", j.cmd, status>>8))
					_ = pid
				}
				jobs = append(jobs[:i], jobs[i+1:]...)
				reaped = true
				break
			}
			if !reaped {
				return
			}
		}
	}

	for {
		reapBackground()
		print("$ ")
		line, more := readLine()
		fields := strings.Fields(line)
		if len(fields) == 0 {
			if !more {
				return 0
			}
			continue
		}
		background := false
		if fields[len(fields)-1] == "&" {
			background = true
			fields = fields[:len(fields)-1]
		}
		if len(fields) == 0 {
			continue
		}

		switch fields[0] {
		case "exit":
			return 0
		case "cd":
			dir := "/"
			if len(fields) > 1 {
				dir = fields[1]
			}
			if e := sys.Chdir(dir); e != 0 {
				print("cd: " + dir + ": " + e.Error() + "\n")
			}
			continue
		case "pwd":
			print(sys.Getcwd() + "\n")
			continue
		case "jobs":
			for _, j := range jobs {
				print(fmt.Sprintf("[%d] %s\n", j.pid, j.cmd))
			}
			continue
		}

		path := fields[0]
		if !strings.Contains(path, "/") {
			path = "/bin/" + path
		}
		// Exec failures happen in the child; check for the executable up
		// front so the user gets "command not found" at the prompt.
		if _, e := sys.Stat(path); e != 0 {
			print(fields[0] + ": " + e.Error() + "\n")
			continue
		}
		pid, e := sys.Spawn(path, fields, nil)
		if e != 0 {
			print(fields[0] + ": " + e.Error() + "\n")
			continue
		}
		if background {
			jobs = append(jobs, job{pid: pid, cmd: fields[0]})
			print(fmt.Sprintf("[%d]\n", pid))
			continue
		}
		// Foreground: wait for the child to exit. For a successful
		// restart that means waiting for the overlaid program itself —
		// the user interacts with it and gets the prompt back when it
		// finishes, exactly as at a real shell.
		status := 0
		for {
			rp, st, e := sys.Wait()
			if e != 0 {
				status = -1
				break
			}
			if rp == pid {
				status = st >> 8
				break
			}
		}
		if status > 0 {
			print(fmt.Sprintf("[status %d]\n", status))
		}
		if !more {
			return 0
		}
	}
}
