// Package scenario is the declarative chaos harness: a scenario value (a
// Go struct, trivially JSON-serializable) describes a cluster topology,
// workloads, a seeded fault schedule, and the invariants to hold; the
// runner boots the cluster, drives the schedule from a single driver
// task, and checks cluster-wide invariants after every event and at
// quiesce. The same seed replays the same run bit for bit, so a failing
// chaos run is reproduced by re-running its emitted artifact.
//
// The hand-coded fault experiments (A7, A8) are expressible as scenario
// tables — tables.go builds them — which is the proof that the DSL
// subsumes the bespoke harness code it replaces.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"

	"procmig/internal/controller"
	"procmig/internal/load"
	"procmig/internal/sim"
)

// Scenario is one deterministic cluster run.
type Scenario struct {
	Name string `json:"name"`
	// Seed feeds the cluster engine PRNG; every drop, duplication, retry
	// and gossip choice derives from it.
	Seed  uint64   `json:"seed"`
	Hosts []string `json:"hosts"` // boot order; all Sun-2s with name tracking

	// HA, when non-nil, starts the availability control plane on every
	// host (heartbeats, membership, guardians).
	HA *HAConfig `json:"ha,omitempty"`

	// Controller, when non-nil, starts the declarative desired-state
	// controller on the named host (requires HA: its observed state is
	// the heartbeat view). Apps reach it through submit_app events.
	Controller *ControllerConfig `json:"controller,omitempty"`

	// Apps are the declarative applications submit_app events may hand
	// to the controller. Each app's program installs at /bin/app-<name>
	// on every host at boot, like workload programs.
	Apps []App `json:"apps,omitempty"`

	Workloads []Workload `json:"workloads"`

	// Load attaches SLI-plane request generators (internal/load) to
	// workloads: open-loop clients whose completion latency measures what
	// the fault schedule does to service, checked against each spec's slo
	// block by the quiesce invariant.
	Load []LoadSpec `json:"load,omitempty"`

	Events []Event `json:"events"`

	// Settle is slept after the last event, before the quiesce invariant
	// checks — chaos schedules that end on a revival or heal need the
	// gossip spread time before membership convergence is checkable.
	Settle sim.Duration `json:"settle,omitempty"`

	Invariants Invariants `json:"invariants,omitempty"`
}

// HAConfig mirrors the ha.Config fields a scenario may set.
type HAConfig struct {
	Interval     sim.Duration `json:"interval"`
	CkptInterval sim.Duration `json:"ckpt_interval,omitempty"`
}

// ControllerConfig mirrors the controller.Config fields a scenario may
// set (zero values take the controller's defaults).
type ControllerConfig struct {
	Host      string       `json:"host"`
	Period    sim.Duration `json:"period,omitempty"`
	DrainWave int          `json:"drain_wave,omitempty"`
}

// App is one declarative application for the controller: the desired
// replica count and placement constraints, plus which program the
// replicas run (the same hog/counterhog vocabulary as workloads).
// Unlike a Workload, an app's processes are spawned and tracked by the
// controller, not the runner — the runner only audits the ground truth
// against the spec (the replicas-converged invariant).
type App struct {
	Name       string `json:"name"`
	Prog       string `json:"prog"`
	TotalBytes int    `json:"total_bytes"`
	WSBytes    int    `json:"ws_bytes"`

	Replicas     int      `json:"replicas"`
	Policy       string   `json:"policy,omitempty"` // "spread" (default) or "binpack"
	AntiAffinity bool     `json:"anti_affinity,omitempty"`
	MaxPerHost   int      `json:"max_per_host,omitempty"`
	Hosts        []string `json:"hosts,omitempty"`
	Avoid        []string `json:"avoid,omitempty"`
	Protect      bool     `json:"protect,omitempty"`
}

// appBinPath is where an app's program installs on every host.
func appBinPath(name string) string { return "/bin/app-" + name }

// spec renders the app as the controller's submission type.
func (a App) spec() controller.AppSpec {
	return controller.AppSpec{
		Name:         a.Name,
		Path:         appBinPath(a.Name),
		Replicas:     a.Replicas,
		Policy:       a.Policy,
		AntiAffinity: a.AntiAffinity,
		MaxPerHost:   a.MaxPerHost,
		Hosts:        a.Hosts,
		Avoid:        a.Avoid,
		Protect:      a.Protect,
	}
}

// Workload is one long-running process the scenario tracks: spawned at
// driver start on Host, referenced from events by Name, and subject to
// the exactly-one-live-copy and conservation invariants for its whole
// pid lineage (migrations and recoveries included).
type Workload struct {
	Name string `json:"name"`
	Host string `json:"host"`
	// Prog selects the program: "hog" (the A6 working-set toucher) or
	// "counterhog" (the A8 variant with a progress counter in its first
	// data word, required by calibrate/await_recovery lost-work math).
	Prog       string `json:"prog"`
	Path       string `json:"path"` // /bin install path (default /bin/<name>)
	TotalBytes int    `json:"total_bytes"`
	WSBytes    int    `json:"ws_bytes"`
}

// LoadSpec is one seeded open-loop request generator aimed at a workload's
// pid lineage: requests arrive every ~Interval (jittered from the engine
// PRNG), queue while the target is frozen or between incarnations, then
// charge Service CPU through the target machine's run queue. The slo block
// (SLOP99 / SLODropped) is checked at quiesce when SLOP99 > 0: observed
// p99 must be ≤ SLOP99 µs and drops ≤ SLODropped.
type LoadSpec struct {
	Name       string       `json:"name"`
	Workload   string       `json:"workload"`
	Interval   sim.Duration `json:"interval"`
	Service    sim.Duration `json:"service"`
	Timeout    sim.Duration `json:"timeout,omitempty"` // abandon after this (0: never)
	Window     sim.Duration `json:"window,omitempty"`  // latency series window (0: 1s)
	SLOP99     sim.Duration `json:"slo_p99,omitempty"`
	SLODropped int64        `json:"slo_dropped,omitempty"`
}

// Event is one schedule step, executed in order by the driver task. Op
// selects the action; the other fields parameterize it (unused ones stay
// zero). Host fields accept the indirections "@home:<workload>" and
// "@buddy:<workload>", resolved against the runner's live bookkeeping at
// execution time — a chaos schedule can say "crash wherever hog1 lives
// now" without knowing where migrations have taken it.
//
//	sleep            Dur
//	await_ready      Workload — poll (1s) until its VM is mapped
//	calibrate        Workload, Dur — measure the counterhog's counting rate
//	fault_port       Port, Drop/Dup/Delay
//	fault_link       From, To, Drop/Dup/Delay
//	clear_faults
//	partition        Groups (netsim full cut between the named groups)
//	heal
//	crash_after      Host, Port, N — scripted crash on the Nth delivery
//	crash            Host — power failure (processes die with it)
//	revive           Host — fresh boot; with HA, rejoin with bumped incarnation
//	protect          Workload, To — guardian protection with To as buddy
//	await_ckpt       Workload, N — poll (100ms) until the buddy committed seq ≥ N
//	migrate          Workload, Host (client), To, Stream, Rounds, Chunks — and await
//	migrate_async    same, but don't await (thundering herds)
//	await_migrations barrier for every outstanding migrate_async
//	await_recovery   Workload, Dur — poll (250ms) until the buddy restarted it
//	counter_bump     Host, N — test-only: move a probe counter by N (negative
//	                 N deliberately violates counter monotonicity)
//	inject_dup       Workload, Host — test-only: start a second live copy
//	inject_kill      Workload — test-only: kill the live copy off the books
//	submit_app       App — hand the named app spec to the controller
//	drain_host       Host, Dur — rolling drain; blocks until the drain
//	                 reports done (Dur caps the wait, default 240s)
//	await_converged  Dur — poll (1s) until the controller reports every
//	                 app at desired state and every drain finished
//	controller_stop  stop the reconcile loop (sabotage helper: what the
//	                 replicas-converged negative test needs)
//	app_kill         App — test-only: kill one running replica off the
//	                 controller's books (deliberate under-replication)
type Event struct {
	Op       string       `json:"op"`
	Workload string       `json:"workload,omitempty"`
	App      string       `json:"app,omitempty"`
	Host     string       `json:"host,omitempty"`
	From     string       `json:"from,omitempty"`
	To       string       `json:"to,omitempty"`
	Port     int          `json:"port,omitempty"`
	N        int          `json:"n,omitempty"`
	Dur      sim.Duration `json:"dur,omitempty"`
	Drop     float64      `json:"drop,omitempty"`
	Dup      float64      `json:"dup,omitempty"`
	Delay    sim.Duration `json:"delay,omitempty"`
	Groups   [][]string   `json:"groups,omitempty"`
	Stream   bool         `json:"stream,omitempty"`
	Rounds   string       `json:"rounds,omitempty"`
	Chunks   int          `json:"chunks,omitempty"`
}

// Invariants selects which checks run. The zero value runs everything
// applicable (membership convergence needs HA; lost-work accounting needs
// a calibrated counterhog).
type Invariants struct {
	SkipLiveCopy     bool `json:"skip_live_copy,omitempty"`
	SkipConservation bool `json:"skip_conservation,omitempty"`
	SkipSplitBrain   bool `json:"skip_split_brain,omitempty"`
	SkipMembership   bool `json:"skip_membership,omitempty"`
	SkipCounters     bool `json:"skip_counters,omitempty"`
	SkipReplicas     bool `json:"skip_replicas,omitempty"`
	SkipSLO          bool `json:"skip_slo,omitempty"`
}

// Violation is one invariant failure: which invariant, after which event
// (-1: the quiesce checks), when, and what the checker saw.
type Violation struct {
	Invariant  string   `json:"invariant"`
	EventIndex int      `json:"event_index"`
	At         sim.Time `json:"at"`
	Detail     string   `json:"detail"`
}

func (v Violation) String() string {
	where := fmt.Sprintf("event %d", v.EventIndex)
	if v.EventIndex < 0 {
		where = "quiesce"
	}
	return fmt.Sprintf("%s violated at %s (t=%d): %s", v.Invariant, where, v.At, v.Detail)
}

// MigrationOutcome is the result of one migrate/migrate_async event.
type MigrationOutcome struct {
	Workload  string       `json:"workload"`
	From      string       `json:"from"`
	To        string       `json:"to"`
	Committed bool         `json:"committed"`
	Total     sim.Duration `json:"total"`  // rmigrate real time
	Freeze    sim.Duration `json:"freeze"` // source kernel's dump window
}

// RecoveryOutcome is the result of one await_recovery event.
type RecoveryOutcome struct {
	Workload    string       `json:"workload"`
	Buddy       string       `json:"buddy"`
	Checkpoints int          `json:"checkpoints"` // committed before the crash
	Recovery    sim.Duration `json:"recovery"`    // crash → restored copy live
	LostWork    sim.Duration `json:"lost_work"`   // replayed work, from the counter gap
	Resumed     bool         `json:"resumed"`
}

// WorkloadOutcome is one workload's state at quiesce.
type WorkloadOutcome struct {
	LiveCopies   int    `json:"live_copies"`
	Host         string `json:"host,omitempty"` // where the live copy ended up
	Migrated     bool   `json:"migrated"`       // the live copy is a migrated/restored one
	ExpectedLive bool   `json:"expected_live"`
}

// AppOutcome is one controller app's ground truth at quiesce: how many
// replica processes actually run, and where — counted from the kernels,
// not from the controller's own bookkeeping.
type AppOutcome struct {
	Desired int            `json:"desired"`
	Running int            `json:"running"`
	Hosts   map[string]int `json:"hosts,omitempty"` // running copies per host
}

// LoadOutcome is one generator's client-visible result at quiesce: the
// cumulative latency/loss stats plus the per-phase blame table for every
// SLO-breaching request.
type LoadOutcome struct {
	load.Stats
	Blame []load.Blame `json:"blame,omitempty"`
}

// Result is everything a scenario run produced.
type Result struct {
	Name       string                      `json:"name"`
	Seed       uint64                      `json:"seed"`
	Events     int                         `json:"events"` // events executed
	Violations []Violation                 `json:"violations,omitempty"`
	Migrations []MigrationOutcome          `json:"migrations,omitempty"`
	Recoveries []RecoveryOutcome           `json:"recoveries,omitempty"`
	Workloads  map[string]*WorkloadOutcome `json:"workloads"`
	Apps       map[string]*AppOutcome      `json:"apps,omitempty"`
	Load       map[string]*LoadOutcome     `json:"load,omitempty"`
}

// Passed reports whether every invariant held.
func (r *Result) Passed() bool { return len(r.Violations) == 0 }

// FirstViolation returns the first invariant failure, or nil.
func (r *Result) FirstViolation() *Violation {
	if len(r.Violations) == 0 {
		return nil
	}
	return &r.Violations[0]
}

// Encode renders the scenario as indented JSON.
func (sc *Scenario) Encode() ([]byte, error) { return json.MarshalIndent(sc, "", "  ") }

// Decode parses a JSON scenario. Unknown fields are rejected loudly — a
// typo'd op parameter silently decoding to the zero value would turn a
// chaos schedule into a quieter one than its author wrote.
func Decode(raw []byte) (*Scenario, error) {
	sc := &Scenario{}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(sc); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return sc, nil
}

// HogSrc is the A6 memory hog: touch a working set of wsBytes once per
// 1 KiB page, forever, inside an image of totalBytes.
func HogSrc(totalBytes, wsBytes int) string {
	return fmt.Sprintf(`
start:  movi r2, ws
        movi r3, 7
loop:   str  r2, r3
        addi r2, 1024
        cmpi r2, wsend
        jlt  loop
        movi r2, ws
        jmp  loop
        .data
ws:     .space %d
wsend:  .space %d
`, wsBytes, totalBytes-wsBytes)
}

// CounterHogSrc is the hog with a progress counter: the first data word
// is incremented once per working-set page touched, so an outside
// observer can read how far the program has gotten — the lost-work math
// in await_recovery depends on it.
func CounterHogSrc(totalBytes, wsBytes int) string {
	return fmt.Sprintf(`
start:  movi r2, ws
        movi r3, 7
loop:   ld   r4, ctr
        addi r4, 1
        st   r4, ctr
        str  r2, r3
        addi r2, 1024
        cmpi r2, wsend
        jlt  loop
        movi r2, ws
        jmp  loop
        .data
ctr:    .space 4
ws:     .space %d
wsend:  .space %d
`, wsBytes, totalBytes-wsBytes)
}

// progSrc resolves a workload's program source.
func progSrc(w Workload) (string, error) {
	return srcFor("workload "+w.Name, w.Prog, w.TotalBytes, w.WSBytes)
}

// appSrc resolves an app's program source.
func appSrc(a App) (string, error) {
	return srcFor("app "+a.Name, a.Prog, a.TotalBytes, a.WSBytes)
}

func srcFor(owner, prog string, totalBytes, wsBytes int) (string, error) {
	switch prog {
	case "hog":
		return HogSrc(totalBytes, wsBytes), nil
	case "counterhog":
		return CounterHogSrc(totalBytes, wsBytes), nil
	default:
		return "", fmt.Errorf("scenario: %s: unknown prog %q", owner, prog)
	}
}

// binPath resolves a workload's install path.
func binPath(w Workload) string {
	if w.Path != "" {
		return w.Path
	}
	return "/bin/" + w.Name
}
