package asm

import (
	"strings"
	"testing"
	"testing/quick"

	"procmig/internal/aout"
	"procmig/internal/vm"
)

func runToHalt(t *testing.T, exe *aout.Exec, isa vm.Level, maxSteps int) *vm.CPU {
	t.Helper()
	c := vm.New(exe.Text, append([]byte(nil), exe.Data...), isa)
	c.PC = exe.Entry
	for i := 0; i < maxSteps; i++ {
		switch res := c.Step(); res {
		case vm.StepOK:
		case vm.StepHalt:
			return c
		default:
			t.Fatalf("step %d: res=%v fault=%v", i, res, c.Fault)
		}
	}
	t.Fatalf("did not halt in %d steps", maxSteps)
	return nil
}

func TestAssembleBasicProgram(t *testing.T) {
	exe, err := Assemble(`
; sum 1..10 into r0
start:  movi r0, 0
        movi r1, 1
loop:   add  r0, r1
        addi r1, 1
        cmpi r1, 11
        jlt  loop
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	c := runToHalt(t, exe, vm.ISA1, 1000)
	if c.R[0] != 55 {
		t.Fatalf("r0 = %d, want 55", c.R[0])
	}
}

func TestDataSectionAndLabels(t *testing.T) {
	exe, err := Assemble(`
start:  ld   r0, answer
        ld   r1, vec+4
        add  r0, r1
        halt
        .data
answer: .word 40
vec:    .word 1, 2, 3
`)
	if err != nil {
		t.Fatal(err)
	}
	c := runToHalt(t, exe, vm.ISA1, 100)
	if c.R[0] != 42 {
		t.Fatalf("r0 = %d, want 42", c.R[0])
	}
}

func TestAscizAndByteDirectives(t *testing.T) {
	exe, err := Assemble(`
start:  movi r1, msg
        ldb  r0, r1
        halt
        .data
msg:    .asciz "Hi"
tag:    .byte 0x7f, 'A'
pad:    .space 3
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(exe.Data) != 3+2+3 {
		t.Fatalf("data len = %d, want 8", len(exe.Data))
	}
	if string(exe.Data[:2]) != "Hi" || exe.Data[2] != 0 {
		t.Fatalf("data = %q", exe.Data)
	}
	if exe.Data[3] != 0x7f || exe.Data[4] != 'A' {
		t.Fatalf("bytes = %v", exe.Data[3:5])
	}
	c := runToHalt(t, exe, vm.ISA1, 100)
	if c.R[0] != 'H' {
		t.Fatalf("r0 = %q", rune(c.R[0]))
	}
}

func TestEntryDirective(t *testing.T) {
	exe, err := Assemble(`
        .entry main
junk:   halt
main:   movi r0, 5
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	c := runToHalt(t, exe, vm.ISA1, 10)
	if c.R[0] != 5 {
		t.Fatalf("r0 = %d; entry not honored", c.R[0])
	}
}

func TestDefaultEntryIsStartLabel(t *testing.T) {
	exe, err := Assemble(`
first:  halt
start:  movi r0, 1
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if exe.Entry == 0 {
		t.Fatal("entry should be the start label, not 0")
	}
}

func TestSyscallByName(t *testing.T) {
	exe, err := Assemble("start: sys write\n halt")
	if err != nil {
		t.Fatal(err)
	}
	if exe.Text[0] != byte(vm.SYS) || exe.Text[1] != byte(vm.SysWrite) {
		t.Fatalf("text = %v", exe.Text[:2])
	}
}

func TestISALevelComputed(t *testing.T) {
	exe1 := MustAssemble("start: movi r0, 1\n halt")
	if exe1.ISA != vm.ISA1 {
		t.Fatalf("isa = %v, want ISA1", exe1.ISA)
	}
	exe2 := MustAssemble("start: movi r0, 1\n bswap r0\n halt")
	if exe2.ISA != vm.ISA2 {
		t.Fatalf("isa = %v, want ISA2", exe2.ISA)
	}
}

func TestSPRegister(t *testing.T) {
	exe := MustAssemble(`
start:  mov  r5, sp
        push r5
        pop  r6
        halt
`)
	c := runToHalt(t, exe, vm.ISA1, 10)
	if c.R[5] != vm.StackTop || c.R[6] != vm.StackTop {
		t.Fatalf("r5=%#x r6=%#x", c.R[5], c.R[6])
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	_, err := Assemble(`
; full-line comment
# hash comment too
start:  nop   ; trailing comment
        halt  # another
        .data
s:      .asciz "semi;colon # inside"
`)
	if err != nil {
		t.Fatal(err)
	}
}

func TestStringWithEscapes(t *testing.T) {
	exe, err := Assemble(`
start:  halt
        .data
s:      .asciz "a\nb\t\"q\""
`)
	if err != nil {
		t.Fatal(err)
	}
	want := "a\nb\t\"q\"\x00"
	if string(exe.Data) != want {
		t.Fatalf("data = %q, want %q", exe.Data, want)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src    string
		substr string
	}{
		{"start: frobnicate r0", "unknown instruction"},
		{"start: movi r9, 1\nhalt", "bad register"},
		{"start: jmp nowhere", "undefined symbol"},
		{"a: nop\na: nop", "duplicate label"},
		{"start: movi r0", "operand"},
		{".space x", "bad .space"},
		{".entry missing\nstart: halt", "undefined entry label"},
		{".bogus 1", "unknown directive"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("%q: expected error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.substr) {
			t.Errorf("%q: error %q does not mention %q", c.src, err, c.substr)
		}
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	_, err := Assemble("start: nop\n nop\n bogusop r0\n")
	aerr, ok := err.(*Error)
	if !ok {
		t.Fatalf("err = %T", err)
	}
	if aerr.Line != 3 {
		t.Fatalf("line = %d, want 3", aerr.Line)
	}
}

func TestLabelArithmetic(t *testing.T) {
	exe, err := Assemble(`
start:  ld r0, tab+8
        halt
        .data
tab:    .word 10, 20, 30
`)
	if err != nil {
		t.Fatal(err)
	}
	c := runToHalt(t, exe, vm.ISA1, 10)
	if c.R[0] != 30 {
		t.Fatalf("r0 = %d, want 30", c.R[0])
	}
}

func TestDisasmRoundTrip(t *testing.T) {
	exe := MustAssemble(`
start:  movi r0, 0x10
        add  r0, r1
        push r0
        sys  exit
        halt
`)
	lines := Disasm(exe.Text)
	if len(lines) != 5 {
		t.Fatalf("disasm lines = %d: %v", len(lines), lines)
	}
	for _, want := range []string{"movi", "add", "push", "sys", "halt"} {
		found := false
		for _, l := range lines {
			if strings.Contains(l, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("disasm missing %q: %v", want, lines)
		}
	}
}

// Property: aout encode/decode round-trips whatever the assembler emits.
func TestAoutRoundTripProperty(t *testing.T) {
	f := func(words []uint32, entrySeed uint8) bool {
		var sb strings.Builder
		sb.WriteString("start: nop\n halt\n .data\n")
		if len(words) > 32 {
			words = words[:32]
		}
		for _, w := range words {
			sb.WriteString(" .word ")
			sb.WriteString(strings.TrimSpace(strings.ReplaceAll(strings.ToLower(hex(w)), " ", "")))
			sb.WriteString("\n")
		}
		exe, err := Assemble(sb.String())
		if err != nil {
			return false
		}
		enc := exe.Encode()
		dec, err := aout.Decode(enc)
		if err != nil {
			return false
		}
		return dec.Entry == exe.Entry && dec.ISA == exe.ISA &&
			string(dec.Text) == string(exe.Text) && string(dec.Data) == string(exe.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func hex(v uint32) string {
	const digits = "0123456789abcdef"
	out := []byte("0x00000000")
	for i := 0; i < 8; i++ {
		out[9-i] = digits[v&0xf]
		v >>= 4
	}
	return string(out)
}
