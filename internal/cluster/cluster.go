// Package cluster assembles the simulated environment of the paper's §3:
// Sun-2/Sun-3 workstations on a 10 Mbit Ethernet, every machine's root
// mounted on every other machine as /n/<host> via NFS (the 8th-edition
// convention), rsh available everywhere, and the migration commands
// installed in /bin.
package cluster

import (
	"fmt"

	"procmig/internal/aout"
	"procmig/internal/apps"
	"procmig/internal/controller"
	"procmig/internal/core"
	"procmig/internal/ha"
	"procmig/internal/inet"
	"procmig/internal/kernel"
	"procmig/internal/netsim"
	"procmig/internal/nfs"
	"procmig/internal/obs"
	"procmig/internal/sim"
	"procmig/internal/tty"
	"procmig/internal/vfs"
	"procmig/internal/vm"
	"procmig/internal/vm/asm"
)

// HostSpec describes one workstation.
type HostSpec struct {
	Name string
	ISA  vm.Level // vm.ISA1 = Sun-2, vm.ISA2 = Sun-3
}

// Options configures a cluster.
type Options struct {
	Hosts  []HostSpec
	Config kernel.Config

	// Network parameters; zero values take era defaults.
	NetLatency  sim.Duration
	NetByteTime sim.Duration

	// SkipMigration leaves the kernel unmodified (no SIGDUMP/rest_proc
	// hooks) — the true baseline system.
	SkipMigration bool
}

// Cluster is a booted simulated network of workstations.
type Cluster struct {
	Eng *sim.Engine
	Net *netsim.Network
	// Obs is the cluster-wide metrics registry and span tracer, shared by
	// every machine and the network so one migration's trace stitches
	// across hosts.
	Obs *obs.Registry

	machines map[string]*kernel.Machine
	hosts    map[string]*netsim.Host
	consoles map[string]*tty.Terminal
	order    []string
	ha       map[string]*ha.Node
	haCfg    ha.Config // StartHA's config, reused when a revived host rejoins
	ctl        *controller.Controller
	migWire    core.WireMode // wire mode controller-driven migrations use
	migClassic bool          // controller migrations use the classic stop-and-copy path
}

// SetMigrationWire selects the wire mode the controller's streaming
// migrations (drains, constraint moves) encode pages with. The default is
// the stream default (elide + LZ); experiments use WireRaw as the
// no-dedup baseline.
func (c *Cluster) SetMigrationWire(w core.WireMode) { c.migWire = w }

// SetMigrationClassic switches controller-driven migrations to the
// paper's original stop-and-copy path (full dump to the file server,
// then restart) instead of the streaming engine. The SLI experiments
// use it to price the freeze a client actually sees under each design.
func (c *Cluster) SetMigrationClassic(on bool) { c.migClassic = on }

// ConfigurePageStores sets every machine's content-addressed page store
// to the given byte budget; 0 or negative disables the stores (the
// "session dedup only" configuration A14 baselines against).
func (c *Cluster) ConfigurePageStores(budget int64) {
	for _, name := range c.order {
		core.ConfigureMachineStore(c.machines[name], budget)
	}
}

// DefaultUser is the ordinary user account used by tests and examples.
var DefaultUser = kernel.Creds{UID: 100, GID: 10, EUID: 100, EGID: 10}

// New boots a cluster.
func New(opts Options) (*Cluster, error) {
	eng := sim.NewEngine()
	lat := opts.NetLatency
	if lat == 0 {
		lat = 1500 * sim.Microsecond
	}
	bt := opts.NetByteTime
	if bt == 0 {
		bt = sim.Microsecond
	}
	c := &Cluster{
		Eng:      eng,
		Net:      netsim.New(eng, lat, bt),
		Obs:      obs.NewRegistry(),
		machines: map[string]*kernel.Machine{},
		hosts:    map[string]*netsim.Host{},
		consoles: map[string]*tty.Terminal{},
	}
	c.Net.SetObs(c.Obs)

	// Pass 1: machines, local filesystems, devices, exports.
	for i, hs := range opts.Hosts {
		m := kernel.NewMachine(eng, hs.Name, hs.ISA, opts.Config)
		m.SetObs(c.Obs)
		// Machines have been up for different lengths of time: stagger
		// their pid counters so pids are distinct across the cluster.
		m.SetNextPID(1 + i*1000)
		if !opts.SkipMigration {
			core.Install(m)
		}
		nh := c.Net.AddHost(hs.Name)
		c.machines[hs.Name] = m
		c.hosts[hs.Name] = nh
		c.order = append(c.order, hs.Name)

		ns := m.NS()
		for _, d := range []string{"/dev", "/bin", "/etc", "/n", "/u"} {
			if err := ns.MkdirAll(d, 0o755, 0, 0); err != nil {
				return nil, err
			}
		}
		for _, d := range []string{"/usr/tmp", "/home"} {
			if err := ns.MkdirAll(d, 0o777, 0, 0); err != nil {
				return nil, err
			}
		}

		console := tty.New(eng, hs.Name+":console")
		c.consoles[hs.Name] = console
		consoleDev := m.RegisterDevice(kernel.NewTTYDevice(console))
		nullDev := m.RegisterDevice(kernel.NewNullDevice())
		for _, nd := range []struct {
			path string
			dev  vfs.DevID
		}{
			{"/dev/console", consoleDev},
			{"/dev/null", nullDev},
			{"/dev/tty", kernel.DevCurrentTTY},
		} {
			dir, base, err := ns.ResolveParent(nd.path)
			if err != nil {
				return nil, err
			}
			if _, err := dir.FS.Mknod(dir.Node, base, nd.dev, 0o666, 0, 0); err != nil {
				return nil, err
			}
		}

		// Export the local disk.
		costs := m.Costs
		if err := nfs.Serve(nh, m.LocalFS(), m.CPU(), nfs.ServerCosts{
			OpCPU:       800 * sim.Microsecond,
			DiskLatency: costs.DiskLatency,
			DiskPerByte: costs.DiskPerByte,
		}); err != nil {
			return nil, err
		}
	}

	// Pass 2: cross-mounts, daemons and programs.
	for _, name := range c.order {
		m := c.machines[name]
		nh := c.hosts[name]
		ns := m.NS()
		for _, other := range c.order {
			if other == name {
				// A machine's own root appears as /n/<self> too (as a
				// symlink to /), so names rewritten by dumpproc resolve
				// on the machine itself as well as remotely.
				if err := ns.Symlink("/n/"+name, "/", 0, 0); err != nil {
					return nil, err
				}
				continue
			}
			if err := ns.MkdirAll("/n/"+other, 0o755, 0, 0); err != nil {
				return nil, err
			}
			if err := ns.Mount("/n/"+other, nfs.NewClient(nh, other)); err != nil {
				return nil, err
			}
		}
		if err := apps.StartRshd(m, nh); err != nil {
			return nil, err
		}
		stack, err := inet.New(nh)
		if err != nil {
			return nil, err
		}
		m.SetNetStack(stack)
		if err := apps.StartMigd(m, nh); err != nil {
			return nil, err
		}

		progs := core.Programs()
		for pname, fn := range core.ToolPrograms() {
			progs[pname] = fn
		}
		for pname, fn := range apps.CheckpointPrograms() {
			progs[pname] = fn
		}
		for pname, fn := range apps.ShellPrograms() {
			progs[pname] = fn
		}
		progs["rsh"] = apps.NewRsh(nh)
		progs["fmigrate"] = apps.NewFastMigrate(nh)
		progs["rmigrate"] = apps.NewRMigrate(nh)

		// A host crash (scripted or explicit) takes the machine's running
		// processes with it — the fault-injection experiments depend on a
		// crashed destination really losing its half-restored copy. The
		// page store is RAM too: it dies with the host, so a revived host
		// re-advertises an empty summary rather than a stale one.
		machine := m
		nh.SetCrashHook(func() {
			for _, pi := range machine.PS() {
				machine.Kill(kernel.Creds{}, pi.PID, kernel.SIGKILL)
			}
			core.DropMachineStore(machine)
		})
		for pname, fn := range progs {
			m.RegisterProgram(pname, fn)
			if err := ns.WriteFile("/bin/"+pname, aout.EncodeHosted(pname), 0o755, 0, 0); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

// NewSimple boots a cluster of Sun-2 workstations with pathname tracking
// and the migration mechanism installed.
func NewSimple(names ...string) (*Cluster, error) {
	var hosts []HostSpec
	for _, n := range names {
		hosts = append(hosts, HostSpec{Name: n, ISA: vm.ISA1})
	}
	return New(Options{Hosts: hosts, Config: kernel.Config{TrackNames: true}})
}

// Machine returns a booted machine by name.
func (c *Cluster) Machine(name string) *kernel.Machine { return c.machines[name] }

// NetHost returns a machine's network attachment.
func (c *Cluster) NetHost(name string) *netsim.Host { return c.hosts[name] }

// Console returns a machine's console terminal.
func (c *Cluster) Console(name string) *tty.Terminal { return c.consoles[name] }

// Names lists the machines in boot order.
func (c *Cluster) Names() []string { return append([]string(nil), c.order...) }

// InstallVM assembles src and installs it at path on every machine.
func (c *Cluster) InstallVM(path, src string) error {
	exe, err := asm.Assemble(src)
	if err != nil {
		return err
	}
	raw := exe.Encode()
	for _, name := range c.order {
		if err := c.machines[name].NS().WriteFile(path, raw, 0o755, 0, 0); err != nil {
			return err
		}
	}
	return nil
}

// InstallHosted registers fn under name on every machine and writes the
// /bin stub.
func (c *Cluster) InstallHosted(name string, fn kernel.HostedProg) error {
	for _, mname := range c.order {
		m := c.machines[mname]
		m.RegisterProgram(name, fn)
		if err := m.NS().WriteFile("/bin/"+name, aout.EncodeHosted(name), 0o755, 0, 0); err != nil {
			return err
		}
	}
	return nil
}

// NewTerminal creates an extra terminal (a window or a serial line) on a
// machine and returns it with its device path.
func (c *Cluster) NewTerminal(host, name string) (*tty.Terminal, string, error) {
	m := c.machines[host]
	if m == nil {
		return nil, "", fmt.Errorf("cluster: no machine %q", host)
	}
	term := tty.New(c.Eng, host+":"+name)
	dev := m.RegisterDevice(kernel.NewTTYDevice(term))
	path := "/dev/" + name
	ns := m.NS()
	dir, base, err := ns.ResolveParent(path)
	if err != nil {
		return nil, "", err
	}
	if _, err := dir.FS.Mknod(dir.Node, base, dev, 0o666, 0, 0); err != nil {
		return nil, "", err
	}
	return term, path, nil
}

// Spawn runs a program on a machine as a user session: stdio on the given
// terminal, cwd in /home.
func (c *Cluster) Spawn(host string, term *tty.Terminal, creds kernel.Creds, path string, args ...string) (*kernel.Proc, error) {
	m := c.machines[host]
	if m == nil {
		return nil, fmt.Errorf("cluster: no machine %q", host)
	}
	if term == nil {
		term = c.consoles[host]
	}
	stdio := m.NewTerminalFile(kernel.NewTTYDevice(term))
	return m.Spawn(kernel.SpawnSpec{
		Path:       path,
		Args:       append([]string{path}, args...),
		Creds:      creds,
		CWD:        "/home",
		TTY:        term,
		InheritFDs: []*kernel.File{stdio, stdio, stdio},
	})
}

// StartHA starts the availability control plane (package ha) on every
// machine: heartbeat membership plus the guardian service, with each
// guardian's arbitration probe wired to the migd transaction port. The
// daemons beacon forever, so a cluster with HA running must call StopHA
// before Run can quiesce (RunUntil works either way).
func (c *Cluster) StartHA(cfg ha.Config) error {
	if c.ha != nil {
		return fmt.Errorf("cluster: HA already started")
	}
	c.ha = map[string]*ha.Node{}
	c.haCfg = cfg
	for _, name := range c.order {
		if err := c.startHANode(name, cfg.Incarnation); err != nil {
			return err
		}
		// A revived host rejoins the control plane as a fresh boot with a
		// bumped incarnation; the hook makes Host.RestartAfter-driven
		// revivals rejoin too, not just explicit ReviveHost calls.
		name := name
		c.hosts[name].SetReviveHook(func() { c.rejoinHA(name) })
	}
	return nil
}

// startHANode boots one host's control-plane node with the given
// incarnation and wires its guardian arbitration and peer list.
func (c *Cluster) startHANode(name string, inc uint32) error {
	nh := c.hosts[name]
	cfg := c.haCfg
	cfg.Incarnation = inc
	node, err := ha.Start(c.machines[name], nh, cfg)
	if err != nil {
		return err
	}
	host := nh
	node.Guard.Arbitrate = func(t *sim.Task, peer string) bool {
		return apps.ProbeAlive(t, host, peer)
	}
	var peers []string
	for _, other := range c.order {
		if other != name {
			peers = append(peers, other)
		}
	}
	node.SetPeers(peers)
	c.ha[name] = node
	return nil
}

// rejoinHA replaces a host's control-plane node after revival: the old
// node's daemons stop and its ports are released (its membership table and
// guardian state die with it, as a reboot would lose them), and a fresh
// node binds the same ports with the incarnation bumped so the cluster
// refutes stale suspicion and re-admits the host exactly once.
func (c *Cluster) rejoinHA(name string) {
	old := c.ha[name]
	inc := uint32(0)
	if old != nil {
		inc = old.Incarnation() + 1
		old.Shutdown()
	}
	// Shutdown released the ports, so the only Listen failure mode is a
	// name that was never booted — excluded by the callers.
	_ = c.startHANode(name, inc)
}

// HA returns a machine's control-plane node (nil before StartHA).
func (c *Cluster) HA(name string) *ha.Node { return c.ha[name] }

// StopHA shuts every control-plane daemon down at its next tick so the
// engine can quiesce.
func (c *Cluster) StopHA() {
	for _, node := range c.ha {
		node.Stop()
	}
}

// Crash takes a machine down mid-run: the host drops off the network and
// every process on it is killed, like a power failure. (SetDown(true) on
// the NetHost alone models a partition — the machine keeps running.)
func (c *Cluster) Crash(name string) {
	if h, ok := c.hosts[name]; ok {
		h.Crash()
	}
}

// ReviveHost brings a crashed machine back as a fresh boot: reachable
// again with cleared network state (no pending scripted crashes, zeroed
// port counters), its processes already gone from the crash, and — when
// HA is running — a new control-plane node on the same ports with a
// bumped incarnation, so the cluster re-admits it exactly once.
func (c *Cluster) ReviveHost(name string) error {
	h, ok := c.hosts[name]
	if !ok {
		return fmt.Errorf("cluster: no machine %q", name)
	}
	if !h.Down() {
		return fmt.Errorf("cluster: %s is not down", name)
	}
	h.Revive() // the revive hook set by StartHA rejoins the control plane
	return nil
}

// Run drives the simulation to quiescence.
func (c *Cluster) Run() error { return c.Eng.Run() }

// RunUntil drives the simulation up to a virtual-time limit.
func (c *Cluster) RunUntil(t sim.Time) error { return c.Eng.RunUntil(t) }
