// Package core implements the paper's contribution: the SIGDUMP dump
// writer and its three dump files (§4.3), the rest_proc() system call
// (§5.2), and the user-level programs dumpproc, restart and migrate (§4.1,
// §4.4), plus the undump utility and the §7 pid/hostname-spoofing
// extension state.
//
// The kernel pieces are installed into a machine with Install; the user
// programs are registered as hosted programs by the cluster package.
package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"procmig/internal/kernel"
	"procmig/internal/tty"
	"procmig/internal/vm"
)

// Magic numbers, exactly the paper's arbitrary choices: octal 444 for the
// stack file and 445 for the files file.
const (
	StackMagic = 0o444
	FilesMagic = 0o445
)

// Dump file name prefixes in /usr/tmp (§4.3).
const (
	DumpDir     = "/usr/tmp"
	AoutPrefix  = "a.out"
	FilesPrefix = "files"
	StackPrefix = "stack"
)

// DumpPaths returns the three dump file paths for a pid, relative to the
// given root prefix ("" for local, "/n/<host>" for remote access).
func DumpPaths(prefix string, pid int) (aoutPath, filesPath, stackPath string) {
	suffix := fmt.Sprintf("%05d", pid)
	return prefix + DumpDir + "/" + AoutPrefix + suffix,
		prefix + DumpDir + "/" + FilesPrefix + suffix,
		prefix + DumpDir + "/" + StackPrefix + suffix
}

// Errors.
var (
	ErrBadMagic     = errors.New("core: bad dump file magic")
	ErrTruncated    = errors.New("core: truncated dump file")
	ErrNotCommitted = errors.New("core: stream image has no matching commit record")
	ErrHashMismatch = errors.New("core: page-ref hash does not match held page")
)

// FDKind classifies one open-file-table entry in the files file.
type FDKind byte

// Entry kinds. The paper keeps no extra information for sockets ("since
// the process migration mechanism does not currently support sockets");
// the socket-migration extension adds FDSocketBound entries that do carry
// the bound port.
const (
	FDUnused      FDKind = 0
	FDFile        FDKind = 1
	FDSocket      FDKind = 2
	FDSocketBound FDKind = 3 // extension: datagram socket with a bound port
)

// FDEntry is one slot of the dumped open file table.
type FDEntry struct {
	Kind   FDKind
	Path   string // absolute path name (lexical, symlinks unresolved)
	Flags  uint32 // open(2) access flags
	Offset uint32
	Port   uint16 // FDSocketBound only (extension)
}

// FilesFile is the information "not needed by the kernel to restart the
// process, but [which] must be used at user level" (§4.3): identification,
// host, cwd, the open file table, and the terminal flags.
type FilesFile struct {
	Host string
	CWD  string
	FDs  [kernel.NOFILE]FDEntry
	TTY  tty.Flags
}

// StackFile is "all the information that is required by the kernel to
// restart a process" (§4.3): credentials, the stack, the registers, and
// the signal dispositions. OldPID is an extension field used only by the
// §7 spoofing option.
type StackFile struct {
	Creds      kernel.Creds
	Stack      []byte
	Regs       vm.Regs
	SigActions [kernel.NSIG]kernel.SigAction
	OldPID     uint32
}

// --- binary encoding (big-endian, like everything on a 68k) ----------------

func putString(b *bytes.Buffer, s string) {
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(s)))
	b.Write(l[:])
	b.WriteString(s)
}

type reader struct {
	buf []byte
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf) < n {
		r.err = ErrTruncated
		return nil
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) str() string {
	n := int(r.u16())
	b := r.take(n)
	return string(b)
}

// Encode serializes the files file.
func (f *FilesFile) Encode() []byte {
	var b bytes.Buffer
	var w [4]byte
	binary.BigEndian.PutUint16(w[:2], FilesMagic)
	b.Write(w[:2])
	putString(&b, f.Host)
	putString(&b, f.CWD)
	for _, e := range f.FDs {
		b.WriteByte(byte(e.Kind))
		switch e.Kind {
		case FDFile:
			putString(&b, e.Path)
			binary.BigEndian.PutUint32(w[:], e.Flags)
			b.Write(w[:])
			binary.BigEndian.PutUint32(w[:], e.Offset)
			b.Write(w[:])
		case FDSocketBound:
			binary.BigEndian.PutUint16(w[:2], e.Port)
			b.Write(w[:2])
		}
	}
	binary.BigEndian.PutUint16(w[:2], uint16(f.TTY))
	b.Write(w[:2])
	return b.Bytes()
}

// DecodeFiles parses a files file, verifying its magic number.
func DecodeFiles(raw []byte) (*FilesFile, error) {
	r := &reader{buf: raw}
	if r.u16() != FilesMagic {
		if r.err != nil {
			return nil, r.err
		}
		return nil, ErrBadMagic
	}
	f := &FilesFile{}
	f.Host = r.str()
	f.CWD = r.str()
	for i := range f.FDs {
		kb := r.take(1)
		if kb == nil {
			break
		}
		f.FDs[i].Kind = FDKind(kb[0])
		switch f.FDs[i].Kind {
		case FDFile:
			f.FDs[i].Path = r.str()
			f.FDs[i].Flags = r.u32()
			f.FDs[i].Offset = r.u32()
		case FDSocketBound:
			f.FDs[i].Port = r.u16()
		}
	}
	f.TTY = tty.Flags(r.u16())
	if r.err != nil {
		return nil, r.err
	}
	return f, nil
}

// Encode serializes the stack file.
func (s *StackFile) Encode() []byte {
	var b bytes.Buffer
	var w [4]byte
	binary.BigEndian.PutUint16(w[:2], StackMagic)
	b.Write(w[:2])
	for _, v := range []int{s.Creds.UID, s.Creds.GID, s.Creds.EUID, s.Creds.EGID} {
		binary.BigEndian.PutUint32(w[:], uint32(v))
		b.Write(w[:])
	}
	binary.BigEndian.PutUint32(w[:], uint32(len(s.Stack)))
	b.Write(w[:])
	b.Write(s.Stack)
	for _, v := range s.Regs.R {
		binary.BigEndian.PutUint32(w[:], v)
		b.Write(w[:])
	}
	binary.BigEndian.PutUint32(w[:], s.Regs.PC)
	b.Write(w[:])
	var fl byte
	if s.Regs.Z {
		fl |= 1
	}
	if s.Regs.N {
		fl |= 2
	}
	b.WriteByte(fl)
	for _, a := range s.SigActions {
		b.WriteByte(byte(a.Disposition))
		binary.BigEndian.PutUint32(w[:], a.Handler)
		b.Write(w[:])
	}
	binary.BigEndian.PutUint32(w[:], s.OldPID)
	b.Write(w[:])
	return b.Bytes()
}

// DecodeStack parses a stack file, verifying its magic number.
func DecodeStack(raw []byte) (*StackFile, error) {
	r := &reader{buf: raw}
	if r.u16() != StackMagic {
		if r.err != nil {
			return nil, r.err
		}
		return nil, ErrBadMagic
	}
	s := &StackFile{}
	s.Creds.UID = int(int32(r.u32()))
	s.Creds.GID = int(int32(r.u32()))
	s.Creds.EUID = int(int32(r.u32()))
	s.Creds.EGID = int(int32(r.u32()))
	n := int(r.u32())
	s.Stack = append([]byte(nil), r.take(n)...)
	for i := range s.Regs.R {
		s.Regs.R[i] = r.u32()
	}
	s.Regs.PC = r.u32()
	flb := r.take(1)
	if flb != nil {
		s.Regs.Z = flb[0]&1 != 0
		s.Regs.N = flb[0]&2 != 0
	}
	for i := range s.SigActions {
		db := r.take(1)
		if db != nil {
			s.SigActions[i].Disposition = kernel.SigDisposition(db[0])
		}
		s.SigActions[i].Handler = r.u32()
	}
	s.OldPID = r.u32()
	if r.err != nil {
		return nil, r.err
	}
	return s, nil
}

// DecodeStackHeader reads only the credentials and stack size from a stack
// file — what rest_proc needs before calling execve (§5.2) and what
// restart is allowed to read ("this is the only information that it reads
// from this file", §4.4).
func DecodeStackHeader(raw []byte) (kernel.Creds, uint32, error) {
	r := &reader{buf: raw}
	if r.u16() != StackMagic {
		if r.err != nil {
			return kernel.Creds{}, 0, r.err
		}
		return kernel.Creds{}, 0, ErrBadMagic
	}
	var c kernel.Creds
	c.UID = int(int32(r.u32()))
	c.GID = int(int32(r.u32()))
	c.EUID = int(int32(r.u32()))
	c.EGID = int(int32(r.u32()))
	size := r.u32()
	if r.err != nil {
		return kernel.Creds{}, 0, r.err
	}
	return c, size, nil
}
