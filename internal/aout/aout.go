// Package aout implements the executable and core-dump file formats of the
// simulated system, in the spirit of the 4.2BSD a.out format the paper's
// SIGDUMP leans on: the dump's a.outXXXXX file is an ordinary executable
// whose data segment holds the dumped process's current data, "which gives
// us, incidentally, the undump utility for free".
package aout

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"procmig/internal/vm"
)

// Magic numbers. OMAGIC matches the historical value; HostedMagic marks the
// stub executables that name a hosted (Go-implemented) user program; the
// core magic is arbitrary, like the paper's 0444/0445 dump magics.
const (
	OMAGIC      = 0o407 // VM executable
	HostedMagic = 0o405 // hosted-program stub
	CoreMagic   = 0o441 // core dump (SIGQUIT)
)

// Common errors.
var (
	ErrBadMagic  = errors.New("aout: bad magic number")
	ErrTruncated = errors.New("aout: truncated file")
	ErrNotHosted = errors.New("aout: not a hosted stub")
)

// Exec is a parsed executable: a header plus the text and data images.
type Exec struct {
	ISA   vm.Level // minimum ISA level the text requires
	Entry uint32
	Text  []byte
	Data  []byte
}

// header layout: magic(2) isa(2) textsize(4) datasize(4) entry(4)
const headerSize = 16

// Encode serializes the executable, big-endian like the 68000 family.
func (e *Exec) Encode() []byte {
	var b bytes.Buffer
	var hdr [headerSize]byte
	binary.BigEndian.PutUint16(hdr[0:], OMAGIC)
	binary.BigEndian.PutUint16(hdr[2:], uint16(e.ISA))
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(e.Text)))
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(e.Data)))
	binary.BigEndian.PutUint32(hdr[12:], e.Entry)
	b.Write(hdr[:])
	b.Write(e.Text)
	b.Write(e.Data)
	return b.Bytes()
}

// Decode parses an executable produced by Encode.
func Decode(raw []byte) (*Exec, error) {
	if len(raw) < headerSize {
		return nil, ErrTruncated
	}
	if binary.BigEndian.Uint16(raw[0:]) != OMAGIC {
		return nil, ErrBadMagic
	}
	isa := vm.Level(binary.BigEndian.Uint16(raw[2:]))
	tsz := binary.BigEndian.Uint32(raw[4:])
	dsz := binary.BigEndian.Uint32(raw[8:])
	entry := binary.BigEndian.Uint32(raw[12:])
	if uint32(len(raw)) < headerSize+tsz+dsz {
		return nil, ErrTruncated
	}
	e := &Exec{
		ISA:   isa,
		Entry: entry,
		Text:  append([]byte(nil), raw[headerSize:headerSize+tsz]...),
		Data:  append([]byte(nil), raw[headerSize+tsz:headerSize+tsz+dsz]...),
	}
	return e, nil
}

// EncodeHosted builds a hosted-program stub: an "executable" whose body is
// just the registered program name. The kernel's exec recognises the magic
// and dispatches to the Go implementation registered under that name.
func EncodeHosted(name string) []byte {
	var b bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[0:], HostedMagic)
	binary.BigEndian.PutUint16(hdr[2:], uint16(len(name)))
	b.Write(hdr[:])
	b.WriteString(name)
	return b.Bytes()
}

// DecodeHosted extracts the program name from a hosted stub.
func DecodeHosted(raw []byte) (string, error) {
	if len(raw) < 4 {
		return "", ErrTruncated
	}
	if binary.BigEndian.Uint16(raw[0:]) != HostedMagic {
		return "", ErrNotHosted
	}
	n := int(binary.BigEndian.Uint16(raw[2:]))
	if len(raw) < 4+n {
		return "", ErrTruncated
	}
	return string(raw[4 : 4+n]), nil
}

// IsHosted reports whether raw looks like a hosted stub.
func IsHosted(raw []byte) bool {
	return len(raw) >= 2 && binary.BigEndian.Uint16(raw[0:]) == HostedMagic
}

// Core is a SIGQUIT core dump: the data segment and stack at the time of
// death plus the registers — a subset of what SIGDUMP saves.
type Core struct {
	ISA   vm.Level
	Entry uint32 // entry of the executable that dumped
	Regs  vm.Regs
	Data  []byte
	Stack []byte
}

// core layout: magic(2) isa(2) entry(4) datasize(4) stacksize(4)
// regs: 9*4 + pc(4) + flags(1), then data, then stack.
const coreFixed = 16 + vm.NumRegs*4 + 4 + 1

// Encode serializes the core dump.
func (c *Core) Encode() []byte {
	var b bytes.Buffer
	var hdr [16]byte
	binary.BigEndian.PutUint16(hdr[0:], CoreMagic)
	binary.BigEndian.PutUint16(hdr[2:], uint16(c.ISA))
	binary.BigEndian.PutUint32(hdr[4:], c.Entry)
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(c.Data)))
	binary.BigEndian.PutUint32(hdr[12:], uint32(len(c.Stack)))
	b.Write(hdr[:])
	var regs [vm.NumRegs*4 + 4 + 1]byte
	for i, r := range c.Regs.R {
		binary.BigEndian.PutUint32(regs[i*4:], r)
	}
	binary.BigEndian.PutUint32(regs[vm.NumRegs*4:], c.Regs.PC)
	var fl byte
	if c.Regs.Z {
		fl |= 1
	}
	if c.Regs.N {
		fl |= 2
	}
	regs[vm.NumRegs*4+4] = fl
	b.Write(regs[:])
	b.Write(c.Data)
	b.Write(c.Stack)
	return b.Bytes()
}

// DecodeCore parses a core dump.
func DecodeCore(raw []byte) (*Core, error) {
	if len(raw) < coreFixed {
		return nil, ErrTruncated
	}
	if binary.BigEndian.Uint16(raw[0:]) != CoreMagic {
		return nil, ErrBadMagic
	}
	c := &Core{
		ISA:   vm.Level(binary.BigEndian.Uint16(raw[2:])),
		Entry: binary.BigEndian.Uint32(raw[4:]),
	}
	dsz := binary.BigEndian.Uint32(raw[8:])
	ssz := binary.BigEndian.Uint32(raw[12:])
	p := 16
	for i := range c.Regs.R {
		c.Regs.R[i] = binary.BigEndian.Uint32(raw[p:])
		p += 4
	}
	c.Regs.PC = binary.BigEndian.Uint32(raw[p:])
	p += 4
	fl := raw[p]
	p++
	c.Regs.Z = fl&1 != 0
	c.Regs.N = fl&2 != 0
	if uint32(len(raw)) < uint32(p)+dsz+ssz {
		return nil, ErrTruncated
	}
	c.Data = append([]byte(nil), raw[p:p+int(dsz)]...)
	c.Stack = append([]byte(nil), raw[p+int(dsz):p+int(dsz)+int(ssz)]...)
	return c, nil
}

// Undump combines an executable with a core dump from a run of that
// executable, producing a new executable whose static (data-segment)
// variables are initialised to the values they had at dump time — the
// classical undump utility the paper notes falls out of SIGDUMP for free.
// Registers and stack are NOT carried over: running the result is like
// running the original from the beginning with updated statics.
func Undump(exe *Exec, core *Core) (*Exec, error) {
	if len(core.Data) != len(exe.Data) {
		return nil, fmt.Errorf("aout: core data size %d does not match executable data size %d", len(core.Data), len(exe.Data))
	}
	return &Exec{
		ISA:   exe.ISA,
		Entry: exe.Entry,
		Text:  append([]byte(nil), exe.Text...),
		Data:  append([]byte(nil), core.Data...),
	}, nil
}
