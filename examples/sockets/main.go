// Sockets: the paper's §9 future work, implemented as an optional
// extension. A datagram server migrates while a client keeps sending to
// the server's ORIGINAL machine; the old machine forwards (the
// DEMOS/MP-style forwarding address), so the stream survives with only
// the freeze-window losses. Run with the extension off to see the paper's
// base behaviour: the socket becomes /dev/null and the server breaks.
//
//	go run ./examples/sockets
package main

import (
	"fmt"
	"log"

	"procmig/internal/cluster"
	"procmig/internal/inet"
	"procmig/internal/kernel"
	"procmig/internal/sim"
	"procmig/internal/vm"
)

const serverSrc = `
start:  sys  socket
        mov  r4, r0
        mov  r0, r4
        movi r1, 4000
        sys  bind
        cmpi r1, 0
        jne  bad
loop:   mov  r0, r4
        movi r1, buf
        movi r2, 16
        sys  recvfrom
        cmpi r1, 0
        jne  bad
        movi r6, buf
        ldb  r5, r6
        cmpi r5, 'q'
        jeq  done
        ld   r5, count
        addi r5, 1
        st   r5, count
        jmp  loop
done:   ld   r0, count
        sys  exit
bad:    movi r0, 99
        sys  exit
        .data
count:  .word 0
buf:    .space 16
`

func main() {
	for _, ext := range []bool{true, false} {
		runScenario(ext)
	}
}

func runScenario(extension bool) {
	mode := "extension ON"
	if !extension {
		mode = "extension OFF (the paper's base mechanism)"
	}
	fmt.Printf("=== socket migration, %s ===\n", mode)

	c, err := cluster.New(cluster.Options{
		Hosts: []cluster.HostSpec{
			{Name: "brick", ISA: vm.ISA1},
			{Name: "schooner", ISA: vm.ISA1},
			{Name: "brador", ISA: vm.ISA1},
		},
		Config: kernel.Config{TrackNames: true, SocketMigration: extension},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := c.InstallVM("/bin/server", serverSrc); err != nil {
		log.Fatal(err)
	}
	const total = 15
	if err := c.InstallHosted("client", func(sys *kernel.Sys, args []string) int {
		fd, e := sys.Socket()
		if e != 0 {
			return 1
		}
		for i := 0; i < total; i++ {
			// Always addressed to brick, where the server started.
			sys.SendTo(fd, "brick", 4000, []byte("x"))
			sys.Sleep(sim.Second)
		}
		sys.SendTo(fd, "brick", 4000, []byte("q"))
		return 0
	}); err != nil {
		log.Fatal(err)
	}

	c.Eng.Go("driver", func(tk *sim.Task) {
		server, _ := c.Spawn("brick", nil, cluster.DefaultUser, "/bin/server")
		tk.Sleep(sim.Second)
		client, _ := c.Spawn("brador", nil, cluster.DefaultUser, "/bin/client")
		tk.Sleep(4 * sim.Second)

		fmt.Printf("[%v] migrating the server brick → schooner mid-stream...\n",
			sim.Duration(tk.Now()))
		dp, _ := c.Spawn("brick", nil, cluster.DefaultUser,
			"/bin/dumpproc", "-p", fmt.Sprint(server.PID))
		dp.AwaitExit(tk)
		rp, _ := c.Spawn("schooner", nil, cluster.DefaultUser,
			"/bin/restart", "-p", fmt.Sprint(server.PID), "-h", "brick")
		client.AwaitExit(tk)
		status := rp.AwaitExit(tk)

		switch {
		case status == 99:
			fmt.Printf("[%v] server BROKE after migration (socket became /dev/null)\n",
				sim.Duration(tk.Now()))
		default:
			fmt.Printf("[%v] server finished on schooner having received %d/%d datagrams\n",
				sim.Duration(tk.Now()), status, total)
			if stack, ok := c.Machine("brick").NetStackRef().(*inet.Stack); ok {
				fmt.Printf("      forwarding table on brick: %v\n", stack.Forwards())
			}
		}
	})
	if err := c.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}
