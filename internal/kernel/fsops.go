package kernel

import (
	"strings"

	"procmig/internal/errno"
	"procmig/internal/sim"
	"procmig/internal/tty"
	"procmig/internal/vfs"
)

// nameiCharge charges the path-walk CPU for an absolute path.
func (p *Proc) nameiCharge(abs string) {
	comps := 1 + strings.Count(strings.Trim(abs, "/"), "/")
	p.sysCPU(sim.Duration(comps) * p.M.Costs.NameiPerComp)
}

// abspath combines a path argument with the u-area cwd, the way the
// paper's modified kernel builds tracked names (lexically).
func (p *Proc) abspath(path string) string { return vfs.JoinPath(p.CWD, path) }

// diskCharge models local-disk data transfer time (as I/O wait, not CPU).
// Remote filesystems charge themselves inside the NFS client.
func (p *Proc) diskCharge(pl vfs.Place, nbytes int) {
	if !placeIsLocal(p.M, pl) {
		return
	}
	p.task.Sleep(p.M.Costs.DiskLatency + sim.Duration(nbytes)*p.M.Costs.DiskPerByte)
}

// open implements open(2). The paper-era open has no O_CREAT; see creat.
func (p *Proc) open(path string, flags int) (int, errno.Errno) {
	p.sysCPU(p.M.Costs.SyscallBase + p.M.Costs.OpenBase)
	abs := p.abspath(path)
	p.nameiCharge(abs)

	f, e := p.openFile(abs, flags)
	if e != 0 {
		p.M.trace(p, "open", "%q flags=%#x = %v", abs, flags, e)
		return -1, e
	}
	f.Name = p.M.trackName(p, abs)
	fd, e := p.allocFD(f)
	p.M.trace(p, "open", "%q flags=%#x = fd %d", abs, flags, fd)
	return fd, e
}

// openFile builds the open file structure for abs without installing it.
func (p *Proc) openFile(abs string, flags int) (*File, errno.Errno) {
	pl, err := p.M.ns.Resolve(abs, true)
	if err != nil {
		return nil, errno.Of(err)
	}
	switch pl.Attr.Type {
	case vfs.TypeDir:
		if flags&O_ACCMOD != O_RDONLY {
			return nil, errno.EISDIR
		}
		return nil, errno.EISDIR // directory reads unsupported via open
	case vfs.TypeDev:
		if e := checkAccess(pl.Attr, p.Creds, accessBitsFor(flags)); e != 0 {
			return nil, e
		}
		dev, e := p.deviceFor(pl.Attr.Dev)
		if e != 0 {
			return nil, e
		}
		return &File{Kind: FileDevice, Dev: dev, DevID: pl.Attr.Dev, Place: pl, Flags: flags}, 0
	case vfs.TypeFile:
		if e := checkAccess(pl.Attr, p.Creds, accessBitsFor(flags)); e != 0 {
			return nil, e
		}
		return &File{Kind: FileInode, Place: pl, Flags: flags}, 0
	default:
		return nil, errno.EINVAL
	}
}

// deviceFor maps a device id to its driver; DevCurrentTTY binds to the
// process's controlling terminal at open time.
func (p *Proc) deviceFor(id vfs.DevID) (Device, errno.Errno) {
	if id == DevCurrentTTY {
		if p.TTY == nil {
			return nil, errno.ENXIO
		}
		return NewTTYDevice(p.TTY), 0
	}
	dev, ok := p.M.devices[id]
	if !ok {
		return nil, errno.ENODEV
	}
	return dev, 0
}

// creat implements creat(2): create (or truncate) and open for writing.
// As in the real kernel it shares open's internal path (§6.1 explains why
// the paper didn't measure it separately).
func (p *Proc) creat(path string, mode uint16) (int, errno.Errno) {
	p.sysCPU(p.M.Costs.SyscallBase + p.M.Costs.OpenBase)
	abs := p.abspath(path)
	p.nameiCharge(abs)

	var f *File
	if pl, err := p.M.ns.Resolve(abs, true); err == nil {
		switch pl.Attr.Type {
		case vfs.TypeDir:
			return -1, errno.EISDIR
		case vfs.TypeDev:
			dev, e := p.deviceFor(pl.Attr.Dev)
			if e != 0 {
				return -1, e
			}
			f = &File{Kind: FileDevice, Dev: dev, DevID: pl.Attr.Dev, Place: pl, Flags: O_WRONLY}
		default:
			if e := checkAccess(pl.Attr, p.Creds, 2); e != 0 {
				return -1, e
			}
			if err := pl.FS.Truncate(pl.Node, 0); err != nil {
				return -1, errno.Of(err)
			}
			pl.Attr.Size = 0
			f = &File{Kind: FileInode, Place: pl, Flags: O_WRONLY}
		}
	} else {
		dir, base, err := p.M.ns.ResolveParent(abs)
		if err != nil {
			return -1, errno.Of(err)
		}
		if e := checkAccess(dir.Attr, p.Creds, 2); e != 0 {
			return -1, e
		}
		node, err := dir.FS.Create(dir.Node, base, mode, p.Creds.EUID, p.Creds.EGID)
		if err != nil {
			return -1, errno.Of(err)
		}
		attr, _ := dir.FS.Getattr(node)
		pl := vfs.Place{FS: dir.FS, Node: node, Attr: attr, Canon: dir.Canon + "/" + base}
		f = &File{Kind: FileInode, Place: pl, Flags: O_WRONLY}
	}
	f.Name = p.M.trackName(p, abs)
	fd, e := p.allocFD(f)
	p.M.trace(p, "creat", "%q mode=%#o = fd %d (%v)", abs, mode, fd, e)
	return fd, e
}

// closeFD implements close(2).
func (p *Proc) closeFD(fd int) errno.Errno {
	p.sysCPU(p.M.Costs.SyscallBase + p.M.Costs.CloseBase)
	f, e := p.fd(fd)
	if e != 0 {
		return e
	}
	p.M.trace(p, "close", "fd %d (%s)", fd, f.Kind)
	p.FDs[fd] = nil
	p.closeFile(f)
	return 0
}

// read implements read(2).
func (p *Proc) read(fd int, n int) ([]byte, errno.Errno) {
	p.sysCPU(p.M.Costs.SyscallBase + p.M.Costs.ReadBase)
	f, e := p.fd(fd)
	if e != 0 {
		return nil, e
	}
	if !f.Readable() {
		return nil, errno.EBADF
	}
	if n < 0 {
		return nil, errno.EINVAL
	}
	switch f.Kind {
	case FileInode:
		data, err := f.Place.FS.ReadAt(f.Place.Node, f.Offset, n)
		if err != nil {
			return nil, errno.Of(err)
		}
		p.diskCharge(f.Place, len(data))
		f.Offset += int64(len(data))
		return data, 0
	case FileDevice:
		return f.Dev.Read(p, n)
	case FilePipe:
		return p.pipeRead(f.Pipe, n)
	case FileSocket:
		if f.Sock != nil {
			// read(2) on a datagram socket behaves like recvfrom.
			return p.recvfrom(fd, n)
		}
		// Unconnected legacy socket: block until a signal arrives.
		var q sim.Queue
		for {
			if p.blockOn(&q) {
				return nil, errno.EINTR
			}
		}
	default:
		return nil, errno.EBADF
	}
}

// write implements write(2).
func (p *Proc) write(fd int, data []byte) (int, errno.Errno) {
	p.sysCPU(p.M.Costs.SyscallBase + p.M.Costs.WriteBase)
	f, e := p.fd(fd)
	if e != 0 {
		return 0, e
	}
	if !f.Writable() {
		return 0, errno.EBADF
	}
	switch f.Kind {
	case FileInode:
		off := f.Offset
		if f.Flags&O_APPEND != 0 {
			attr, err := f.Place.FS.Getattr(f.Place.Node)
			if err != nil {
				return 0, errno.Of(err)
			}
			off = attr.Size
		}
		n, err := f.Place.FS.WriteAt(f.Place.Node, off, data)
		if err != nil {
			return 0, errno.Of(err)
		}
		p.diskCharge(f.Place, n)
		f.Offset = off + int64(n)
		return n, 0
	case FileDevice:
		return f.Dev.Write(p, data)
	case FilePipe:
		return p.pipeWrite(f.Pipe, data)
	case FileSocket:
		// Datagrams into the void: accepted and dropped.
		return len(data), 0
	default:
		return 0, errno.EBADF
	}
}

// lseek implements lseek(2).
func (p *Proc) lseek(fd int, off int64, whence int) (int64, errno.Errno) {
	p.sysCPU(p.M.Costs.SyscallBase)
	f, e := p.fd(fd)
	if e != 0 {
		return 0, e
	}
	if f.Kind != FileInode {
		return 0, errno.ESPIPE
	}
	var base int64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = f.Offset
	case SeekEnd:
		attr, err := f.Place.FS.Getattr(f.Place.Node)
		if err != nil {
			return 0, errno.Of(err)
		}
		base = attr.Size
	default:
		return 0, errno.EINVAL
	}
	pos := base + off
	if pos < 0 {
		return 0, errno.EINVAL
	}
	f.Offset = pos
	return pos, 0
}

// chdir implements chdir(2) with the paper's §5.1 u-area maintenance: the
// new cwd name is the lexical combination of the old one and the argument.
func (p *Proc) chdir(path string) errno.Errno {
	p.sysCPU(p.M.Costs.SyscallBase + p.M.Costs.ChdirBase)
	abs := p.abspath(path)
	p.nameiCharge(abs)
	pl, err := p.M.ns.Resolve(abs, true)
	if err != nil {
		return errno.Of(err)
	}
	if pl.Attr.Type != vfs.TypeDir {
		return errno.ENOTDIR
	}
	if p.M.Config.TrackNames {
		// Charge the combine-and-copy work only: the u-area field is a
		// fixed-size buffer, so chdir pays no allocator cost (§5.1).
		p.sysCPU(p.M.Costs.TrackCopyBase + sim.Duration(len(abs))*p.M.Costs.TrackNamePerByte)
	}
	p.M.trace(p, "chdir", "%q", abs)
	p.CWD = abs
	return 0
}

// readlink implements readlink(2).
func (p *Proc) readlink(path string) (string, errno.Errno) {
	p.sysCPU(p.M.Costs.SyscallBase + p.M.Costs.StatBase)
	abs := p.abspath(path)
	p.nameiCharge(abs)
	pl, err := p.M.ns.Resolve(abs, false)
	if err != nil {
		return "", errno.Of(err)
	}
	if pl.Attr.Type != vfs.TypeSymlink {
		return "", errno.EINVAL
	}
	target, err := pl.FS.Readlink(pl.Node)
	if err != nil {
		return "", errno.Of(err)
	}
	return target, 0
}

// stat implements stat(2) (following symlinks).
func (p *Proc) stat(path string) (vfs.Attr, errno.Errno) {
	p.sysCPU(p.M.Costs.SyscallBase + p.M.Costs.StatBase)
	abs := p.abspath(path)
	p.nameiCharge(abs)
	pl, err := p.M.ns.Resolve(abs, true)
	if err != nil {
		return vfs.Attr{}, errno.Of(err)
	}
	return pl.Attr, 0
}

// lstat implements lstat(2).
func (p *Proc) lstat(path string) (vfs.Attr, errno.Errno) {
	p.sysCPU(p.M.Costs.SyscallBase + p.M.Costs.StatBase)
	abs := p.abspath(path)
	p.nameiCharge(abs)
	pl, err := p.M.ns.Resolve(abs, false)
	if err != nil {
		return vfs.Attr{}, errno.Of(err)
	}
	return pl.Attr, 0
}

// unlink implements unlink(2).
func (p *Proc) unlink(path string) errno.Errno {
	p.sysCPU(p.M.Costs.SyscallBase + p.M.Costs.OpenBase)
	abs := p.abspath(path)
	p.nameiCharge(abs)
	dir, base, err := p.M.ns.ResolveParent(abs)
	if err != nil {
		return errno.Of(err)
	}
	if e := checkAccess(dir.Attr, p.Creds, 2); e != 0 {
		return e
	}
	return errno.Of(dir.FS.Remove(dir.Node, base))
}

// mkdir implements mkdir(2).
func (p *Proc) mkdir(path string, mode uint16) errno.Errno {
	p.sysCPU(p.M.Costs.SyscallBase + p.M.Costs.OpenBase)
	abs := p.abspath(path)
	p.nameiCharge(abs)
	dir, base, err := p.M.ns.ResolveParent(abs)
	if err != nil {
		return errno.Of(err)
	}
	if e := checkAccess(dir.Attr, p.Creds, 2); e != 0 {
		return e
	}
	_, err = dir.FS.Mkdir(dir.Node, base, mode, p.Creds.EUID, p.Creds.EGID)
	return errno.Of(err)
}

// symlink implements symlink(2).
func (p *Proc) symlink(target, path string) errno.Errno {
	p.sysCPU(p.M.Costs.SyscallBase + p.M.Costs.OpenBase)
	abs := p.abspath(path)
	p.nameiCharge(abs)
	dir, base, err := p.M.ns.ResolveParent(abs)
	if err != nil {
		return errno.Of(err)
	}
	if e := checkAccess(dir.Attr, p.Creds, 2); e != 0 {
		return e
	}
	return errno.Of(dir.FS.Symlink(dir.Node, base, target, p.Creds.EUID, p.Creds.EGID))
}

// pipeFDs implements pipe(2).
func (p *Proc) pipeFDs() (int, int, errno.Errno) {
	p.sysCPU(p.M.Costs.SyscallBase + p.M.Costs.OpenBase)
	pp := newPipe()
	rf := &File{Kind: FilePipe, Pipe: pp, Flags: O_RDONLY}
	wf := &File{Kind: FilePipe, Pipe: pp, PipeWr: true, Flags: O_WRONLY}
	rfd, e := p.allocFD(rf)
	if e != 0 {
		return -1, -1, e
	}
	wfd, e := p.allocFD(wf)
	if e != 0 {
		p.FDs[rfd] = nil
		p.closeFile(rf)
		return -1, -1, e
	}
	return rfd, wfd, 0
}

// socket implements socket(2) for datagram sockets. Under the paper's
// base mechanism these cannot be migrated (§7); the SocketMigration
// extension re-binds them (socket.go).
func (p *Proc) socket() (int, errno.Errno) {
	p.sysCPU(p.M.Costs.SyscallBase + p.M.Costs.OpenBase)
	return p.allocFD(&File{Kind: FileSocket, Flags: O_RDWR, Sock: &SocketObj{}})
}

// pipeRead reads from a pipe, blocking while it is empty and writers
// remain.
func (p *Proc) pipeRead(pp *Pipe, max int) ([]byte, errno.Errno) {
	for {
		if len(pp.buf) > 0 {
			n := len(pp.buf)
			if n > max {
				n = max
			}
			out := append([]byte(nil), pp.buf[:n]...)
			pp.buf = pp.buf[n:]
			pp.writers.WakeAll()
			return out, 0
		}
		if pp.nwriters == 0 {
			return nil, 0 // EOF
		}
		if p.blockOn(&pp.readers) {
			return nil, errno.EINTR
		}
	}
}

// pipeWrite writes to a pipe, blocking while it is full.
func (p *Proc) pipeWrite(pp *Pipe, data []byte) (int, errno.Errno) {
	written := 0
	for len(data) > 0 {
		if pp.nreaders == 0 {
			p.postSignal(SIGPIPE)
			p.deliverSignals()
			return written, errno.EPIPE
		}
		room := pp.capacity - len(pp.buf)
		if room == 0 {
			if p.blockOn(&pp.writers) {
				return written, errno.EINTR
			}
			continue
		}
		n := len(data)
		if n > room {
			n = room
		}
		pp.buf = append(pp.buf, data[:n]...)
		data = data[n:]
		written += n
		pp.readers.WakeAll()
	}
	return written, 0
}

// ioctlGetTTY implements the TIOCGETP side of ioctl(2).
func (p *Proc) ioctlGetTTY(fd int) (tty.Flags, errno.Errno) {
	p.sysCPU(p.M.Costs.SyscallBase)
	f, e := p.fd(fd)
	if e != 0 {
		return 0, e
	}
	term := terminalOf(f)
	if term == nil {
		return 0, errno.ENOTTY
	}
	return term.Flags(), 0
}

// ioctlSetTTY implements the TIOCSETP side of ioctl(2).
func (p *Proc) ioctlSetTTY(fd int, flags tty.Flags) errno.Errno {
	p.sysCPU(p.M.Costs.SyscallBase)
	f, e := p.fd(fd)
	if e != 0 {
		return e
	}
	term := terminalOf(f)
	if term == nil {
		return errno.ENOTTY
	}
	term.SetFlags(flags)
	return 0
}

// terminalOf extracts the terminal behind an open file, if any.
func terminalOf(f *File) *tty.Terminal {
	if f.Kind != FileDevice {
		return nil
	}
	if th, ok := f.Dev.(terminalHolder); ok {
		return th.Terminal()
	}
	return nil
}
