package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"procmig/internal/cluster"
	"procmig/internal/sim"
)

// runScript executes a migsim script against a fresh two-machine cluster
// and returns the cluster for inspection.
func runScript(t *testing.T, script [][]string) (*cluster.Cluster, *session) {
	t.Helper()
	c, err := cluster.NewSimple("brick", "schooner")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InstallVM("/bin/counter", cluster.TestProgramSrc); err != nil {
		t.Fatal(err)
	}
	s := &session{c: c}
	c.Eng.Go("driver", func(tk *sim.Task) {
		for _, cmd := range script {
			if err := s.exec(tk, cmd); err != nil {
				t.Errorf("%v: %v", cmd, err)
				return
			}
		}
	})
	if err := c.RunUntil(sim.Time(600 * sim.Second)); err != nil {
		if _, stalled := err.(*sim.StallError); !stalled {
			t.Fatal(err)
		}
	}
	return c, s
}

func TestScriptMigration(t *testing.T) {
	c, s := runScript(t, [][]string{
		{"run", "brick", "/bin/counter"},
		{"sleep", "2"},
		{"type", "brick", "hello"},
		{"sleep", "2"},
		{"migrate", "schooner", "$1", "brick", "schooner"},
		{"sleep", "2"},
		{"type", "schooner", "world"},
		{"sleep", "2"},
		{"eof", "schooner"},
		{"time"},
	})
	if len(s.pids) != 1 {
		t.Fatalf("pids = %v", s.pids)
	}
	out, err := c.Machine("brick").NS().ReadFile("/home/out")
	if err != nil || string(out) != "hello\nworld\n" {
		t.Fatalf("out = %q err = %v", out, err)
	}
	if !strings.Contains(c.Console("schooner").Output(), "R3 D3 S3") {
		t.Fatalf("schooner console = %q", c.Console("schooner").Output())
	}
}

func TestScriptPsKillCat(t *testing.T) {
	c, _ := runScript(t, [][]string{
		{"run", "brick", "/bin/counter"},
		{"sleep", "1"},
		{"ps", "brick"},
		{"kill", "brick", "$1", "9"},
		{"sleep", "1"},
		{"tty", "brick"},
	})
	if n := len(c.Machine("brick").Procs()); n != 0 {
		t.Fatalf("%d procs left after kill", n)
	}
}

func TestScriptMetricsSpansTimeline(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	c, _ := runScript(t, [][]string{
		{"run", "brick", "/bin/counter"},
		{"sleep", "2"},
		{"run", "schooner", "/bin/fmigrate", "-p", "1", "-f", "brick", "-t", "schooner", "-s", "-r", "2"},
		{"sleep", "30"},
		{"metrics"},
		{"metrics", "brick"},
		{"spans"},
		{"timeline", out},
	})
	if len(c.Obs.Snapshot()) == 0 {
		t.Fatal("metrics registry empty after a migration")
	}
	var root bool
	for _, sp := range c.Obs.Tracer.Roots() {
		if sp.Name == "migration" {
			root = true
		}
	}
	if !root {
		t.Fatal("no migration root span recorded")
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	var spans int
	for _, ev := range events {
		if ev["ph"] == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Fatal("timeline export has no span events")
	}
}

func TestScriptErrors(t *testing.T) {
	c, err := cluster.NewSimple("brick")
	if err != nil {
		t.Fatal(err)
	}
	s := &session{c: c}
	bad := [][]string{
		{"frobnicate"},
		{"run", "brick"},       // missing path
		{"kill", "brick", "x"}, // bad pid
		{"ps", "ghost"},        // unknown host
		{"sleep", "NaN"},
	}
	c.Eng.Go("driver", func(tk *sim.Task) {
		for _, cmd := range bad {
			if err := s.exec(tk, cmd); err == nil {
				t.Errorf("%v: expected an error", cmd)
			}
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPidReferences(t *testing.T) {
	s := &session{pids: []int{101, 202}}
	if pid, err := s.pid("$2"); err != nil || pid != 202 {
		t.Fatalf("$2 = %d, %v", pid, err)
	}
	if pid, err := s.pid("77"); err != nil || pid != 77 {
		t.Fatalf("77 = %d, %v", pid, err)
	}
	for _, bad := range []string{"$0", "$3", "$x", "abc"} {
		if _, err := s.pid(bad); err == nil {
			t.Errorf("%q: expected error", bad)
		}
	}
}

// TestScriptController drives the desired-state layer entirely from
// script commands: start the controller, declare an app, drain a host,
// and read the status back.
func TestScriptController(t *testing.T) {
	c, _ := runScript(t, [][]string{
		{"controller", "start", "brick"},
		{"sleep", "5"},
		{"controller", "submit", "web", "/bin/counter", "2"},
		{"sleep", "30"},
		{"controller", "status"},
		{"controller", "drain", "schooner"},
		{"sleep", "30"},
		{"controller", "status"},
	})
	ctl := c.Controller()
	if ctl == nil {
		t.Fatal("controller never started")
	}
	st := ctl.Status()
	if len(st.Apps) != 1 || st.Apps[0].Live != 2 {
		t.Fatalf("app status = %+v", st.Apps)
	}
	d, ok := ctl.DrainStatus("schooner")
	if !ok || !d.Done || d.Failed != 0 {
		t.Fatalf("drain status = %+v ok=%v", d, ok)
	}
	for _, r := range st.Apps[0].Replicas {
		if r.Host == "schooner" {
			t.Fatalf("replica still on drained host: %+v", r)
		}
	}
}

// TestScriptControllerErrors: controller subcommands validate loudly.
func TestScriptControllerErrors(t *testing.T) {
	c, err := cluster.NewSimple("brick")
	if err != nil {
		t.Fatal(err)
	}
	s := &session{c: c}
	bad := [][]string{
		{"controller"},           // no subcommand
		{"controller", "status"}, // not started
		{"controller", "submit", "web", "/bin/x", "2"}, // not started
		{"controller", "drain", "brick"},               // not started
		{"controller", "start"},                        // missing host
		{"controller", "start", "ghost"},               // unknown host
		{"controller", "flush"},                        // unknown subcommand
	}
	c.Eng.Go("driver", func(tk *sim.Task) {
		for _, cmd := range bad {
			if err := s.exec(tk, cmd); err == nil {
				t.Errorf("%v: expected an error", cmd)
			}
		}
	})
	if err := c.RunUntil(sim.Time(60 * sim.Second)); err != nil {
		if _, stalled := err.(*sim.StallError); !stalled {
			t.Fatal(err)
		}
	}
}

// TestScriptStatusAndProm: the loss/occupancy dashboard and the
// Prometheus exposition both render after a migration.
func TestScriptStatusAndProm(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	captured := make(chan string, 1)
	go func() {
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		captured <- sb.String()
	}()
	runScript(t, [][]string{
		{"run", "brick", "/bin/counter"},
		{"sleep", "2"},
		{"run", "schooner", "/bin/fmigrate", "-p", "1", "-f", "brick", "-t", "schooner", "-s", "-r", "2"},
		{"sleep", "30"},
		{"status"},
		{"metrics", "-format", "prom"},
	})
	w.Close()
	os.Stdout = old
	out := <-captured
	for _, want := range []string{
		"status:", "trace_drops", "frozen", "txn_table", "stream_evicted",
		"# TYPE procmig_stream_wire_bytes counter",
		"procmig_migd_txn_table{host=",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}

	// Unknown formats fail loudly rather than falling back to the table.
	c, err := cluster.NewSimple("brick")
	if err != nil {
		t.Fatal(err)
	}
	s := &session{c: c}
	c.Eng.Go("driver", func(tk *sim.Task) {
		if err := s.exec(tk, []string{"metrics", "-format", "xml"}); err == nil {
			t.Error("metrics -format xml: expected an error")
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}
