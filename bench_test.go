// Package procmig's top-level benchmarks regenerate every figure of the
// paper's evaluation (§6) plus the DESIGN.md ablations. The interesting
// output is the simulated-time metrics attached to each benchmark
// (sim_* and ratio_* via -bench); wall-clock ns/op only says how fast the
// simulator itself runs. Run:
//
//	go test -bench=. -benchmem
//
// EXPERIMENTS.md records the paper-vs-measured comparison; cmd/migbench
// prints the same numbers as tables.
package procmig

import (
	"testing"

	"procmig/internal/cluster"
	"procmig/internal/experiments"
	"procmig/internal/sim"
	"procmig/internal/vm"
	"procmig/internal/vm/asm"
)

func reportSeconds(b *testing.B, name string, d sim.Duration) {
	b.ReportMetric(float64(d)/1e6, name+"_s")
}

// BenchmarkFig1SyscallOverhead regenerates Figure 1: the system-CPU
// overhead of the modified open/close and chdir calls (paper: 1.44×,
// 1.36×).
func BenchmarkFig1SyscallOverhead(b *testing.B) {
	var r *experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig1()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.OpenCloseOverhead(), "ratio_openclose")
	b.ReportMetric(r.ChdirOverhead(), "ratio_chdir")
	reportSeconds(b, "sim_openclose_tracked", r.OpenCloseTracked)
	reportSeconds(b, "sim_chdir_tracked", r.ChdirTracked)
}

// BenchmarkFig2Dump regenerates Figure 2: SIGQUIT vs SIGDUMP vs dumpproc
// (paper: SIGDUMP ≈3× both; dumpproc ≈4× CPU, ≈6× real).
func BenchmarkFig2Dump(b *testing.B) {
	var r *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.DumpCPURatio(), "ratio_sigdump_cpu")
	b.ReportMetric(r.DumpRealRatio(), "ratio_sigdump_real")
	b.ReportMetric(r.DumpprocCPURatio(), "ratio_dumpproc_cpu")
	b.ReportMetric(r.DumpprocRealRatio(), "ratio_dumpproc_real")
	reportSeconds(b, "sim_sigquit_real", r.QuitReal)
	reportSeconds(b, "sim_sigdump_real", r.DumpReal)
	reportSeconds(b, "sim_dumpproc_real", r.DumpprocReal)
}

// BenchmarkFig3Restart regenerates Figure 3: execve vs rest_proc vs the
// restart command (paper: rest_proc slightly >1; restart ≈5× CPU, ≈6×
// real).
func BenchmarkFig3Restart(b *testing.B) {
	var r *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig3()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.RestProcCPURatio(), "ratio_restproc_cpu")
	b.ReportMetric(r.RestartCPURatio(), "ratio_restart_cpu")
	b.ReportMetric(r.RestartRealRatio(), "ratio_restart_real")
	reportSeconds(b, "sim_execve_real", r.ExecveReal)
	reportSeconds(b, "sim_restart_real", r.RestartReal)
}

// BenchmarkFig4Migrate regenerates Figure 4: migrate vs dumpproc+restart
// for the four locality cases (paper: up to ≈10×, almost half a minute,
// for remote→remote).
func BenchmarkFig4Migrate(b *testing.B) {
	var cases []*experiments.Fig4Case
	for i := 0; i < b.N; i++ {
		var err error
		cases, err = experiments.Fig4()
		if err != nil {
			b.Fatal(err)
		}
	}
	names := map[string]string{"L→L": "LL", "L→R": "LR", "R→L": "RL", "R→R": "RR"}
	for _, fc := range cases {
		b.ReportMetric(fc.Ratio(), "ratio_"+names[fc.Name])
		reportSeconds(b, "sim_migrate_"+names[fc.Name], fc.MigrateReal)
	}
}

// BenchmarkAblationNameStorage regenerates A1: dynamic vs MAXPATHLEN
// fixed pathname storage in the kernel (§5.1's design argument).
func BenchmarkAblationNameStorage(b *testing.B) {
	var r *experiments.A1Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.A1NameStorage()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.DynamicPeak), "dynamic_bytes")
	b.ReportMetric(float64(r.FixedPeak), "fixed_bytes")
	b.ReportMetric(r.SavingFactor, "ratio_fixed_vs_dynamic")
}

// BenchmarkAblationMigd regenerates A2: rsh-based migrate vs the §6.4
// migration daemon on the remote→remote case.
func BenchmarkAblationMigd(b *testing.B) {
	var r *experiments.A2Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.A2Migd()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Speedup, "ratio_speedup")
	reportSeconds(b, "sim_rsh_migrate", r.RshMigrate)
	reportSeconds(b, "sim_migd_migrate", r.FastMigrate)
}

// BenchmarkAblationPollInterval regenerates A3: dumpproc's sleep policy.
func BenchmarkAblationPollInterval(b *testing.B) {
	var pts []*experiments.A3Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.A3PollInterval()
		if err != nil {
			b.Fatal(err)
		}
	}
	labels := map[string]string{
		"250ms": "250ms", "500ms": "500ms", "1s (paper)": "1s",
		"2s": "2s", "250ms+backoff": "backoff",
	}
	for _, p := range pts {
		reportSeconds(b, "sim_poll_"+labels[p.Label], p.Real)
	}
}

// BenchmarkAblationCheckpoint regenerates A4: checkpoint frequency vs
// job-runtime overhead (§8).
func BenchmarkAblationCheckpoint(b *testing.B) {
	var pts []*experiments.A4Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.A4Checkpoint()
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, p := range pts {
		b.ReportMetric(p.Overhead, "overhead_cfg"+string(rune('1'+i)))
	}
}

// BenchmarkAblationLoadBalance regenerates A5: batch makespan with and
// without the §8 load balancer.
func BenchmarkAblationLoadBalance(b *testing.B) {
	var r *experiments.A5Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.A5LoadBalance()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Improvement, "improvement")
	b.ReportMetric(float64(r.Migrations), "migrations")
	reportSeconds(b, "sim_unbalanced", r.Unbalanced)
	reportSeconds(b, "sim_balanced", r.Balanced)
}

// BenchmarkAblationPrecopy regenerates A6: stop-and-copy vs streaming
// stop-and-copy vs pre-copy migration, freeze window and total time per
// image size.
func BenchmarkAblationPrecopy(b *testing.B) {
	var pts []*experiments.A6Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.A6Precopy()
		if err != nil {
			b.Fatal(err)
		}
	}
	labels := map[string]string{"64K/8K": "64k", "256K/16K": "256k", "512K/32K": "512k"}
	for _, pt := range pts {
		l := labels[pt.Label]
		reportSeconds(b, "sim_stop_total_"+l, pt.StopTotal)
		reportSeconds(b, "sim_stream_freeze_"+l, pt.StreamFreeze)
		reportSeconds(b, "sim_precopy_freeze_"+l, pt.PreFreeze)
		b.ReportMetric(float64(pt.StopTotal)/float64(pt.PreFreeze), "ratio_freeze_gain_"+l)
	}
}

// BenchmarkWireA9 regenerates A9: bytes on the wire and freeze time for
// raw vs elide vs elide+LZ page encodings, per entropy/dirty-rate cell.
func BenchmarkWireA9(b *testing.B) {
	var pts []*experiments.A9Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.A9Wire()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, pt := range pts {
		l := pt.Config.Entropy + "_" + map[int]string{10: "10", 50: "50"}[pt.Config.DirtyPct]
		b.ReportMetric(float64(pt.Raw.WireBytes), "wire_raw_"+l)
		b.ReportMetric(float64(pt.LZ.WireBytes), "wire_lz_"+l)
		if pt.LZ.WireBytes > 0 {
			b.ReportMetric(float64(pt.Raw.WireBytes)/float64(pt.LZ.WireBytes), "ratio_raw_vs_lz_"+l)
		}
	}
}

// --- simulator micro-benchmarks (real wall time) -----------------------------

// BenchmarkVMExecution measures raw interpreter speed (simulated
// instructions per wall-clock second matter for large experiments).
func BenchmarkVMExecution(b *testing.B) {
	exe := asm.MustAssemble(`
start:  movi r0, 0
loop:   addi r0, 1
        cmpi r0, 1000000000
        jlt  loop
        halt
`)
	cpu := vm.New(exe.Text, exe.Data, vm.ISA1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cpu.Step() != vm.StepOK {
			b.Fatal("vm stopped")
		}
	}
}

// BenchmarkAssembler measures assembling the paper's test program.
func BenchmarkAssembler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := asm.Assemble(cluster.TestProgramSrc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterBoot measures building a full three-machine cluster
// (filesystems, NFS cross-mounts, daemons, programs).
func BenchmarkClusterBoot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := cluster.NewSimple("alpha", "beta", "gamma")
		if err != nil {
			b.Fatal(err)
		}
		_ = c
	}
}

// BenchmarkEndToEndMigration measures the wall-clock cost of simulating
// one complete remote migration (the TestMigrateRemote scenario).
func BenchmarkEndToEndMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.MeasureOneMigration(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionSocketMigration measures E3: the freeze window and
// datagram survival of the socket-migration extension (§9 future work).
func BenchmarkExtensionSocketMigration(b *testing.B) {
	var r *experiments.E3Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.E3SocketMigration()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.ReceivedWith)/float64(r.Sent), "delivery_ratio")
	reportSeconds(b, "sim_freeze", r.Freeze)
}
