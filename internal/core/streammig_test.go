package core_test

import (
	"fmt"
	"strings"
	"testing"

	"procmig/internal/core"
	"procmig/internal/kernel"
	"procmig/internal/nfs"
	"procmig/internal/sim"
)

// findMigrated locates the restarted (overlaid) process on a machine.
func findMigrated(m *kernel.Machine) *kernel.Proc {
	for _, pi := range m.PS() {
		if p, ok := m.FindProc(pi.PID); ok && p.Migrated {
			return p
		}
	}
	return nil
}

// TestStreamingMigration runs fmigrate -s end to end: the image travels
// migd-to-migd, the destination restarts from its local spool, and the
// source never writes dump files to its /usr/tmp.
func TestStreamingMigration(t *testing.T) {
	for _, rounds := range []string{"0", "2"} {
		rounds := rounds
		t.Run("rounds="+rounds, func(t *testing.T) {
			c := boot(t, "brick", "schooner", "brador")
			src := c.Console("brick")

			var counter, mig, mp *kernel.Proc
			var migStatus int
			var destNFSBefore, destNFSAfter int64
			c.Eng.Go("driver", func(tk *sim.Task) {
				counter = spawnOK(t, c, "brick", src, "/bin/counter")
				tk.Sleep(2 * sim.Second)
				src.Type("one\n")
				tk.Sleep(2 * sim.Second)

				destNFSBefore = c.NetHost("schooner").ClientBytes(nfs.Port)
				mig = spawnOK(t, c, "brador", nil, "/bin/fmigrate",
					"-p", fmt.Sprint(counter.PID), "-f", "brick", "-t", "schooner",
					"-s", "-r", rounds)
				migStatus = mig.AwaitExit(tk)
				destNFSAfter = c.NetHost("schooner").ClientBytes(nfs.Port)

				tk.Sleep(2 * sim.Second)
				mp = findMigrated(c.Machine("schooner"))
				// Kill the migrated process (it blocks reading migd's pty).
				for _, name := range c.Names() {
					for _, pi := range c.Machine(name).PS() {
						c.Machine(name).Kill(kernel.Creds{}, pi.PID, kernel.SIGKILL)
					}
				}
			})
			run(t, c)

			if migStatus != 0 {
				t.Fatalf("fmigrate -s exit = %d", migStatus)
			}
			if counter.KilledBy != kernel.SIGDUMP {
				t.Fatalf("source process killed by %v", counter.KilledBy)
			}
			if mp == nil {
				t.Fatal("no migrated process on schooner")
			}
			if mp.OldHost != "brick" {
				t.Fatalf("migrated process OldHost = %q", mp.OldHost)
			}
			// The input typed before migration reached the output file on
			// brick; the migrated process carried its state across.
			data, err := c.Machine("brick").NS().ReadFile("/home/out")
			if err != nil || string(data) != "one\n" {
				t.Fatalf("output file = %q, %v", data, err)
			}

			// The spool on the destination was pure staging — removed once
			// the restart consumed it — and the source never wrote dump
			// files at all.
			aoutPath, filesPath, stackPath := core.DumpPaths("", counter.PID)
			for _, path := range []string{aoutPath, filesPath, stackPath} {
				if _, err := c.Machine("schooner").NS().ReadFile(path); err == nil {
					t.Errorf("spool file %s leaked on schooner after restart", path)
				}
				if _, err := c.Machine("brick").NS().ReadFile(path); err == nil {
					t.Errorf("dump file %s exists on brick: streaming fell back to disk", path)
				}
			}
			// The destination read no image over NFS: what remains is the
			// restart's fixed metadata traffic (cwd lookups, open-file
			// re-opens). With a big image the gap widens — A6 measures
			// that; here a fixed cap catches any image read sneaking back.
			if nfsBytes := destNFSAfter - destNFSBefore; nfsBytes > 4096 {
				t.Errorf("destination moved %d NFS bytes during streaming migration", nfsBytes)
			}
		})
	}
}

// TestStreamingMigrationPermissions: a non-owner cannot stream-migrate
// someone else's process, and no image bytes move.
func TestStreamingMigrationPermissions(t *testing.T) {
	c := boot(t, "brick", "schooner")
	src := c.Console("brick")

	var counter, mig *kernel.Proc
	var migStatus int
	var msgsBefore, msgsAfter int64
	other := kernel.Creds{UID: 99, GID: 99, EUID: 99, EGID: 99}
	c.Eng.Go("driver", func(tk *sim.Task) {
		counter = spawnOK(t, c, "brick", src, "/bin/counter")
		tk.Sleep(2 * sim.Second)

		msgsBefore = c.NetHost("schooner").Stats().MsgsIn
		var err error
		mig, err = c.Spawn("brick", nil, other, "/bin/fmigrate",
			"-p", fmt.Sprint(counter.PID), "-f", "brick", "-t", "schooner", "-s")
		if err != nil {
			t.Error(err)
			return
		}
		migStatus = mig.AwaitExit(tk)
		msgsAfter = c.NetHost("schooner").Stats().MsgsIn

		c.Machine("brick").Kill(kernel.Creds{}, counter.PID, kernel.SIGKILL)
	})
	run(t, c)

	if migStatus == 0 {
		t.Fatal("non-owner fmigrate -s succeeded")
	}
	if counter.KilledBy == kernel.SIGDUMP {
		t.Fatal("victim was dumped despite permission failure")
	}
	if moved := msgsAfter - msgsBefore; moved != 0 {
		t.Fatalf("%d messages reached the destination for a denied request", moved)
	}
}

// TestStreamingFreezeShorterThanLegacy: the headline property — with
// pre-copy, the time the process is actually frozen (the final SIGDUMP
// round) is far below the legacy dump+restart window.
func TestStreamingFreezeShorterThanLegacy(t *testing.T) {
	elapsed := map[string]sim.Duration{}
	freeze := map[string]sim.Duration{}
	for _, mode := range []string{"legacy", "stream"} {
		mode := mode
		c := boot(t, "brick", "schooner", "brador")
		var status int
		c.Eng.Go("driver", func(tk *sim.Task) {
			p := spawnOK(t, c, "brick", nil, "/bin/counter")
			tk.Sleep(2 * sim.Second)
			args := []string{"-p", fmt.Sprint(p.PID), "-f", "brick", "-t", "schooner"}
			if mode == "stream" {
				args = append(args, "-s", "-r", "2")
			}
			start := tk.Now()
			mig := spawnOK(t, c, "brador", nil, "/bin/fmigrate", args...)
			status = mig.AwaitExit(tk)
			elapsed[mode] = sim.Duration(tk.Now() - start)
			freeze[mode] = c.Machine("brick").Metrics.LastDump.Real
			for _, name := range c.Names() {
				for _, pi := range c.Machine(name).PS() {
					if strings.Contains(pi.Cmd, "a.out") || strings.Contains(pi.Cmd, "restart") {
						c.Machine(name).Kill(kernel.Creds{}, pi.PID, kernel.SIGKILL)
					}
				}
			}
		})
		run(t, c)
		if status != 0 {
			t.Fatalf("%s fmigrate exit = %d", mode, status)
		}
	}
	// Legacy freeze is the whole dump-to-restart window; with streaming the
	// pre-copied image leaves only the dirty delta inside the freeze.
	if freeze["stream"] >= elapsed["legacy"] {
		t.Fatalf("streaming freeze %v not below legacy total %v", freeze["stream"], elapsed["legacy"])
	}
	if freeze["stream"] >= freeze["legacy"] {
		t.Fatalf("streaming freeze %v not below legacy dump time %v", freeze["stream"], freeze["legacy"])
	}
}
