package apps

import (
	"procmig/internal/kernel"
	"procmig/internal/sim"
)

// NightScheduler implements the paper's second §8 application: CPU hogs
// with large expected running times are confined to one machine during
// the day, when users want the workstations, and spread evenly across the
// network at night, when the load is low.
type NightScheduler struct {
	Home     *kernel.Machine   // where hogs live during the day
	Machines []*kernel.Machine // the whole network (includes Home)

	// Jobs tracks the hogs by their current (machine, pid); Add registers
	// them, and migrations keep the entries up to date.
	jobs []*nightJob

	Events []MigrationEvent
}

type nightJob struct {
	m   *kernel.Machine
	pid int
}

// Add registers a running CPU hog to be managed.
func (ns *NightScheduler) Add(m *kernel.Machine, pid int) {
	ns.jobs = append(ns.jobs, &nightJob{m: m, pid: pid})
}

// Running reports how many managed jobs are still alive.
func (ns *NightScheduler) Running() int {
	alive := 0
	for _, j := range ns.jobs {
		if p, ok := j.m.FindProc(j.pid); ok && p.State == kernel.ProcRunning {
			alive++
		}
	}
	return alive
}

// Placement reports how many live jobs run on each machine.
func (ns *NightScheduler) Placement() map[string]int {
	out := map[string]int{}
	for _, j := range ns.jobs {
		if p, ok := j.m.FindProc(j.pid); ok && p.State == kernel.ProcRunning {
			out[j.m.Name]++
		}
	}
	return out
}

func (ns *NightScheduler) moveJob(t *sim.Task, j *nightJob, dst *kernel.Machine) {
	if j.m == dst {
		return
	}
	if p, ok := j.m.FindProc(j.pid); !ok || p.State != kernel.ProcRunning {
		return
	}
	newPid, err := MigrateProc(t, j.m, dst, j.pid)
	if err != nil {
		return
	}
	ns.Events = append(ns.Events, MigrationEvent{
		At: t.Now(), PID: j.pid, New: newPid, From: j.m.Name, To: dst.Name,
	})
	j.m = dst
	j.pid = newPid
}

// Nightfall spreads the managed jobs round-robin across all machines.
func (ns *NightScheduler) Nightfall(t *sim.Task) {
	i := 0
	for _, j := range ns.jobs {
		if p, ok := j.m.FindProc(j.pid); !ok || p.State != kernel.ProcRunning {
			continue
		}
		ns.moveJob(t, j, ns.Machines[i%len(ns.Machines)])
		i++
	}
}

// Daybreak brings every managed job back to the home machine.
func (ns *NightScheduler) Daybreak(t *sim.Task) {
	for _, j := range ns.jobs {
		ns.moveJob(t, j, ns.Home)
	}
}
