package kernel

import (
	"testing"

	"procmig/internal/sim"
	"procmig/internal/vm"
)

// TestTraceRingDrops overflows the bounded kernel trace buffer and checks
// that the head truncation is counted — locally, and in the machine's
// metrics scope — rather than silent.
func TestTraceRingDrops(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMachine(eng, "brick", vm.ISA1, Config{})
	m.SetTracing(true)
	p := &Proc{PID: 1, Cmd: "flood", M: m}
	const extra = 37
	for i := 0; i < MaxTraceEntries+extra; i++ {
		m.trace(p, "flood", "%d", i)
	}
	if got := len(m.TraceLog()); got != MaxTraceEntries {
		t.Fatalf("trace log holds %d entries, want %d", got, MaxTraceEntries)
	}
	if got := m.TraceDropped(); got != extra {
		t.Fatalf("TraceDropped = %d, want %d", got, extra)
	}
	if got := m.Obs.Counter("kernel.trace_dropped").Value(); got != extra {
		t.Fatalf("kernel.trace_dropped counter = %d, want %d", got, extra)
	}
	// The oldest surviving entry is the first one NOT dropped.
	if first := m.TraceLog()[0].Detail; first != "37" {
		t.Fatalf("oldest surviving entry is %q, want \"37\"", first)
	}
	// Toggling tracing off resets the log and the local drop count (the
	// registry counter is cumulative by design).
	m.SetTracing(false)
	if m.TraceDropped() != 0 || m.TraceLog() != nil {
		t.Fatal("SetTracing(false) did not reset the drop count and log")
	}
}
