// Package ha is the cluster availability control plane: the layer that
// notices where load is and when a machine dies, which the paper's §8
// applications (load balancing, checkpointing long computations) take for
// granted. Each host runs three cooperating daemons on top of netsim:
//
//   - hbd beacons liveness plus a digest of the local run queue. In small
//     clusters every peer hears every beacon directly; at scale each
//     interval beacons go to k ≈ ⌈log₂N⌉+2 peers chosen by a deterministic
//     shuffle of the engine PRNG, with third-party member summaries
//     piggybacked so news still reaches everyone in O(log N / log k)
//     intervals — O(N·k) messages per interval instead of O(N²).
//   - guardd (source role) takes periodic incremental checkpoints of
//     processes registered for protection — the PR 1 dirty-page stream
//     format reused as delta checkpoints — and spools them to a buddy
//     host.
//   - guardd (buddy role) watches the membership table; when a protected
//     process's home goes silent it arbitrates over an independent
//     channel (the migd transaction port) and, only when the host is
//     confirmed dead, restarts the newest committed checkpoint locally.
//
// The policy layer (apps.Balancer, apps.NightScheduler) consumes the
// disseminated view instead of dereferencing peer Machine structs, making
// it honest about what a real distributed system could know.
package ha

import (
	"encoding/binary"
	"errors"
	"math"

	"procmig/internal/kernel"
	"procmig/internal/netsim"
	"procmig/internal/obs"
	"procmig/internal/sim"
)

// Control-plane ports, continuing the /etc/services-style numbering the
// migration daemons use (515-517).
const (
	HBPort         = 520 // hbd: heartbeat beacons
	GuardPort      = 521 // guardd control verbs (release)
	GuardSpoolPort = 522 // guardd checkpoint streams (netsim stream port)
	MemberSyncPort = 523 // hbd anti-entropy: full member-state push-pull
)

// HeartbeatMagic continues the paper's octal numbering: 444 stack, 445
// files, 446 stream hello, 447 heartbeat.
const HeartbeatMagic = 0o447

// ProcStat is one run-queue entry advertised in a heartbeat: a VM
// (migratable) process with enough accounting for a remote balancer to
// pick candidates without inspecting the peer's process table.
type ProcStat struct {
	PID    int
	OldPID int          // pre-migration pid (0 if never migrated)
	Age    sim.Duration // virtual time since the process started
	CPU    sim.Duration // user CPU consumed
}

// MemberSummary is gossip about a third party: what the sender's
// membership table says about another host. Age is how long before the
// beacon was sent that the sender last heard from the member, so the
// receiver can reconstruct a liveness bound on its own clock without the
// hosts sharing one. Inc is the member's incarnation as the sender knows
// it: news about an older incarnation is void at the receiver.
type MemberSummary struct {
	Host    string
	Seq     uint32
	Inc     uint32
	Load    int
	Age     sim.Duration
	Suspect bool // the sender believes this member is dead (probe failed)
}

// Heartbeat is one hbd beacon. Inc is the sender's incarnation number: 0
// for a first boot, bumped on every revival, so receivers can tell a
// reborn host's fresh state (sequence numbers restart at 1) from a stale
// replay of its previous life.
type Heartbeat struct {
	Host      string
	Seq       uint32
	Inc       uint32
	Load      int // run-queue length (kernel.Machine.Load)
	Procs     []ProcStat
	Summaries []MemberSummary // piggybacked gossip (optional on the wire)
}

// procStatWire is the encoded size of one ProcStat.
const procStatWire = 4 + 4 + 8 + 8

var errBadHeartbeat = errors.New("ha: bad heartbeat")

// hbAck is the shared one-byte delivery ack — never mutated, so every
// beacon response reuses it instead of allocating.
var hbAck = []byte{1}

// AppendTo serializes the heartbeat onto b and returns the extended slice;
// passing a reused scratch buffer makes steady-state encoding
// allocation-free. The summary block is emitted only when non-empty,
// keeping the byte stream identical to the pre-gossip format otherwise
// (old decoders read new proc-only beacons and vice versa).
func (hb *Heartbeat) AppendTo(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, HeartbeatMagic)
	b = binary.BigEndian.AppendUint16(b, uint16(len(hb.Host)))
	b = append(b, hb.Host...)
	b = binary.BigEndian.AppendUint32(b, hb.Seq)
	b = binary.BigEndian.AppendUint32(b, hb.Inc)
	b = binary.BigEndian.AppendUint32(b, uint32(hb.Load))
	b = binary.BigEndian.AppendUint16(b, uint16(len(hb.Procs)))
	for _, ps := range hb.Procs {
		b = binary.BigEndian.AppendUint32(b, uint32(ps.PID))
		b = binary.BigEndian.AppendUint32(b, uint32(ps.OldPID))
		b = binary.BigEndian.AppendUint64(b, uint64(ps.Age))
		b = binary.BigEndian.AppendUint64(b, uint64(ps.CPU))
	}
	if len(hb.Summaries) > 0 {
		b = binary.BigEndian.AppendUint16(b, uint16(len(hb.Summaries)))
		for _, s := range hb.Summaries {
			b = binary.BigEndian.AppendUint16(b, uint16(len(s.Host)))
			b = append(b, s.Host...)
			b = binary.BigEndian.AppendUint32(b, s.Seq)
			b = binary.BigEndian.AppendUint32(b, s.Inc)
			b = binary.BigEndian.AppendUint32(b, uint32(s.Load))
			b = binary.BigEndian.AppendUint64(b, uint64(s.Age))
			var flag byte
			if s.Suspect {
				flag = 1
			}
			b = append(b, flag)
		}
	}
	return b
}

// Encode serializes a heartbeat into fresh storage.
func (hb *Heartbeat) Encode() []byte {
	return hb.AppendTo(make([]byte, 0, 20+len(hb.Host)+len(hb.Procs)*procStatWire+len(hb.Summaries)*29))
}

// DecodeHeartbeat parses a beacon, rejecting bad magic, truncation, and
// trailing garbage.
func DecodeHeartbeat(raw []byte) (*Heartbeat, error) {
	hb := &Heartbeat{}
	if err := DecodeHeartbeatInto(raw, hb, nil); err != nil {
		return nil, err
	}
	return hb, nil
}

// DecodeHeartbeatInto parses a beacon into hb, reusing hb's Procs and
// Summaries storage. names, if non-nil, interns host strings so repeated
// beacons from known hosts allocate nothing. Counts are validated against
// the remaining bytes before any allocation, so hostile input cannot
// demand memory. Bad magic, truncation, and trailing garbage are
// rejected.
func DecodeHeartbeatInto(raw []byte, hb *Heartbeat, names map[string]string) error {
	p, err := decodeHBMain(raw, hb, names)
	if err != nil {
		return err
	}
	hb.Summaries = hb.Summaries[:0]
	if p == len(raw) {
		return nil // pre-gossip format: no summary block
	}
	ns, err := validateSummaries(raw, p)
	if err != nil {
		return err
	}
	p += 2
	for i := 0; i < ns; i++ {
		hl := int(binary.BigEndian.Uint16(raw[p:]))
		hb.Summaries = append(hb.Summaries, MemberSummary{
			Host:    internName(names, raw[p+2:p+2+hl]),
			Seq:     binary.BigEndian.Uint32(raw[p+2+hl:]),
			Inc:     binary.BigEndian.Uint32(raw[p+2+hl+4:]),
			Load:    int(int32(binary.BigEndian.Uint32(raw[p+2+hl+8:]))),
			Age:     sim.Duration(binary.BigEndian.Uint64(raw[p+2+hl+12:])),
			Suspect: raw[p+2+hl+20] == 1,
		})
		p += 2 + hl + 21
	}
	return nil
}

// decodeHBMain parses the fixed header, host and proc block, returning the
// offset where the optional summary block begins.
func decodeHBMain(raw []byte, hb *Heartbeat, names map[string]string) (int, error) {
	if len(raw) < 18 {
		return 0, errBadHeartbeat
	}
	if binary.BigEndian.Uint16(raw) != HeartbeatMagic {
		return 0, errBadHeartbeat
	}
	hostLen := int(binary.BigEndian.Uint16(raw[2:]))
	if len(raw) < 4+hostLen+14 {
		return 0, errBadHeartbeat
	}
	hb.Host = internName(names, raw[4:4+hostLen])
	p := 4 + hostLen
	hb.Seq = binary.BigEndian.Uint32(raw[p:])
	hb.Inc = binary.BigEndian.Uint32(raw[p+4:])
	hb.Load = int(int32(binary.BigEndian.Uint32(raw[p+8:])))
	n := int(binary.BigEndian.Uint16(raw[p+12:]))
	p += 14
	if len(raw)-p < n*procStatWire {
		return 0, errBadHeartbeat
	}
	hb.Procs = hb.Procs[:0]
	for i := 0; i < n; i++ {
		hb.Procs = append(hb.Procs, ProcStat{
			PID:    int(int32(binary.BigEndian.Uint32(raw[p:]))),
			OldPID: int(int32(binary.BigEndian.Uint32(raw[p+4:]))),
			Age:    sim.Duration(binary.BigEndian.Uint64(raw[p+8:])),
			CPU:    sim.Duration(binary.BigEndian.Uint64(raw[p+16:])),
		})
		p += procStatWire
	}
	return p, nil
}

// validateSummaries checks the whole summary block at offset p — count,
// per-entry bounds, flag values, exact end — before any byte is consumed,
// so a consumer that streams entries into live state never applies half a
// corrupt message. A zero count is rejected: encoders omit the block
// instead, which keeps the encoding canonical (decode∘encode is the
// identity).
func validateSummaries(raw []byte, p int) (int, error) {
	if len(raw)-p < 2 {
		return 0, errBadHeartbeat
	}
	ns := int(binary.BigEndian.Uint16(raw[p:]))
	p += 2
	if ns == 0 {
		return 0, errBadHeartbeat
	}
	for i := 0; i < ns; i++ {
		if len(raw)-p < 2 {
			return 0, errBadHeartbeat
		}
		hl := int(binary.BigEndian.Uint16(raw[p:]))
		if len(raw)-p < 2+hl+21 {
			return 0, errBadHeartbeat
		}
		if raw[p+2+hl+20] > 1 {
			return 0, errBadHeartbeat
		}
		p += 2 + hl + 21
	}
	if p != len(raw) {
		return 0, errBadHeartbeat
	}
	return ns, nil
}

// decodeHeartbeatObserve is the hbd hot path: identical wire validation to
// DecodeHeartbeatInto, but summaries are streamed straight into the
// membership — one map probe per entry, zero allocations for known hosts —
// instead of being materialized on the Heartbeat. hb.Summaries is left
// empty. Returns the number of summaries observed.
func decodeHeartbeatObserve(raw []byte, hb *Heartbeat, names map[string]string, ms *Membership, now sim.Time) (int, error) {
	p, err := decodeHBMain(raw, hb, names)
	if err != nil {
		return 0, err
	}
	hb.Summaries = hb.Summaries[:0]
	if p == len(raw) {
		return 0, nil
	}
	ns, err := validateSummaries(raw, p)
	if err != nil {
		return 0, err
	}
	p += 2
	for i := 0; i < ns; i++ {
		hl := int(binary.BigEndian.Uint16(raw[p:]))
		age := sim.Duration(binary.BigEndian.Uint64(raw[p+2+hl+12:]))
		ms.ObserveSummaryBytes(raw[p+2:p+2+hl],
			binary.BigEndian.Uint32(raw[p+2+hl:]),
			binary.BigEndian.Uint32(raw[p+2+hl+4:]),
			int(int32(binary.BigEndian.Uint32(raw[p+2+hl+8:]))),
			raw[p+2+hl+20] == 1,
			now-sim.Time(age), now)
		p += 2 + hl + 21
	}
	return ns, nil
}

// internName maps raw bytes to a canonical string: the map[string]([]byte
// key) lookup compiles to a no-allocation probe, so known hosts cost
// nothing after their first beacon.
func internName(names map[string]string, b []byte) string {
	if names == nil {
		return string(b)
	}
	if s, ok := names[string(b)]; ok {
		return s
	}
	s := string(b)
	names[s] = s
	return s
}

// Config tunes one node's control-plane daemons. Zero values take the
// defaults.
type Config struct {
	Interval     sim.Duration // beacon period (default 1s)
	SuspectAfter sim.Duration // beacon silence before suspicion (default 3×Interval)
	CkptInterval sim.Duration // delta-checkpoint period (default 5s)
	Fanout       int          // beacons per interval (default ⌈log₂N⌉+2, capped at N-1)
	Piggyback    int          // member summaries per beacon (default 2×Fanout)
	Incarnation  uint32       // this boot's incarnation (0 first boot; bump on revival)
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = sim.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3 * c.Interval
	}
	if c.CkptInterval <= 0 {
		c.CkptInterval = 5 * sim.Second
	}
	return c
}

// StatSource is what hbd reads from its own host to build a beacon. A
// kernel.Machine is the real source; scale scenarios substitute synthetic
// ones so a 1,000-host cluster need not boot 1,000 kernels.
type StatSource interface {
	HostName() string
	RunQueueLen() int
	// AppendProcStats appends the migratable run-queue entries to dst and
	// returns it (scratch-friendly: dst is reused across intervals).
	AppendProcStats(now sim.Time, dst []ProcStat) []ProcStat
}

// machineSource adapts a kernel.Machine to StatSource.
type machineSource struct{ m *kernel.Machine }

func (s machineSource) HostName() string { return s.m.Name }
func (s machineSource) RunQueueLen() int { return s.m.Load() }
func (s machineSource) AppendProcStats(now sim.Time, dst []ProcStat) []ProcStat {
	for _, p := range s.m.Procs() {
		if p.State != kernel.ProcRunning || p.VM == nil {
			continue
		}
		oldPID := 0
		if p.Migrated {
			oldPID = p.OldPID
		}
		dst = append(dst, ProcStat{
			PID: p.PID, OldPID: oldPID,
			Age: sim.Duration(now - p.StartedAt),
			CPU: p.UTime,
		})
	}
	return dst
}

// Node is one host's slice of the control plane: its hbd, its membership
// view, and (when started on a full machine) its guardian.
type Node struct {
	src     StatSource
	m       *kernel.Machine // nil when started via StartSource
	host    *netsim.Host
	eng     *sim.Engine
	cfg     Config
	members *Membership
	Guard   *Guard

	peers      []string
	fanout     int          // effective beacons per interval
	piggyback  int          // effective summaries per beacon
	effSuspect sim.Duration // suspicion timeout incl. gossip spread margin

	// hot-path scratch: the engine serializes actors, so one of each per
	// node suffices.
	pick   []int  // peer permutation for the partial shuffle
	encBuf []byte // beacon encode buffer
	txHB   Heartbeat
	rxHB   Heartbeat
	syncHB Heartbeat         // full-state scratch for anti-entropy exchanges
	names  map[string]string // interned host names for decode

	cBeaconsOut *obs.Counter
	cBeaconsIn  *obs.Counter
	cBeaconFail *obs.Counter
	cSummaries  *obs.Counter
	cSyncs      *obs.Counter

	seq     uint32
	inc     uint32 // incarnation, from Config (bumped externally on revival)
	stopped bool
}

// Start wires the full control plane into a machine: listeners for
// heartbeats and guardian traffic, plus the background
// beacon/checkpoint/monitor loops. Call SetPeers before the engine runs;
// call Stop to let the engine quiesce (the loops otherwise beacon
// forever).
func Start(m *kernel.Machine, host *netsim.Host, cfg Config) (*Node, error) {
	n, err := StartSource(m.Engine(), host, machineSource{m}, m.Obs, cfg)
	if err != nil {
		return nil, err
	}
	n.m = m
	n.Guard = newGuard(n)
	if err := n.Guard.listen(); err != nil {
		return nil, err
	}
	eng := m.Engine()
	stagger := sim.Duration(hashName(m.Name)%97) * sim.Millisecond
	eng.GoAfter("guardd@"+m.Name, stagger, n.Guard.checkpointLoop)
	eng.GoAfter("guardmon@"+m.Name, stagger, n.Guard.monitorLoop)
	return n, nil
}

// StartSource wires only the heartbeat/membership slice of the control
// plane around an arbitrary StatSource — no guardian, no kernel. scope may
// be nil to skip metrics.
func StartSource(eng *sim.Engine, host *netsim.Host, src StatSource, scope *obs.Scope, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	n := &Node{
		src: src, host: host, eng: eng, cfg: cfg,
		members:    NewMembership(src.HostName(), cfg.SuspectAfter),
		effSuspect: cfg.SuspectAfter,
		names:      map[string]string{},
		inc:        cfg.Incarnation,
	}
	if scope != nil {
		n.cBeaconsOut = scope.Counter("hb.beacons_out")
		n.cBeaconsIn = scope.Counter("hb.beacons_in")
		n.cBeaconFail = scope.Counter("hb.beacon_fail")
		n.cSummaries = scope.Counter("hb.summaries_in")
		n.cSyncs = scope.Counter("hb.syncs_out")
	}
	if err := host.Listen(HBPort, n.handleBeacon); err != nil {
		return nil, err
	}
	if err := host.Listen(MemberSyncPort, n.handleSync); err != nil {
		return nil, err
	}
	// Staggered start: machines boot at slightly different phases, like
	// the staggered pid counters — and simultaneous cluster-wide beacon
	// bursts would serialize artificially on the shared engine.
	stagger := sim.Duration(hashName(src.HostName())%97) * sim.Millisecond
	eng.GoAfter("hbd@"+src.HostName(), stagger, n.beaconLoop)
	return n, nil
}

// handleBeacon is the HBPort listener: decode into per-node scratch, fold
// the sender's state and its piggybacked gossip into the table. The
// handler never parks, so the scratch cannot be observed mid-update.
func (n *Node) handleBeacon(t *sim.Task, raw []byte) []byte {
	now := n.now(t)
	nsumm, err := decodeHeartbeatObserve(raw, &n.rxHB, n.names, n.members, now)
	if err != nil {
		return nil
	}
	n.members.Observe(&n.rxHB, now)
	if n.cBeaconsIn != nil {
		n.cBeaconsIn.Inc()
		n.cSummaries.Add(int64(nsumm))
	}
	return hbAck // delivery ack; losing it costs only the sender
}

// SetPeers tells the node who else is in the cluster. With at most
// Fanout peers every beacon goes to everyone (and gossip adds nothing);
// above that, each interval beacons go to a PRNG-chosen Fanout-subset and
// the suspicion timeout stretches by the expected gossip spread time.
func (n *Node) SetPeers(peers []string) {
	n.peers = append(n.peers[:0], peers...)
	n.fanout = n.cfg.Fanout
	if n.fanout <= 0 {
		n.fanout = ceilLog2(len(peers)+1) + 2
	}
	if n.fanout > len(peers) {
		n.fanout = len(peers)
	}
	n.piggyback = n.cfg.Piggyback
	if n.piggyback <= 0 {
		n.piggyback = 2 * n.fanout
	}
	n.effSuspect = n.cfg.SuspectAfter
	if n.fanout < len(n.peers) {
		// A member's liveness reaches an observer two ways: epidemically
		// (fresh news re-broadcast with budget, ~log_k(N) intervals) and
		// via the rotation half of the piggyback, which mentions it to
		// k·(p/2) random observers per interval cluster-wide. Stretch the
		// suspicion timeout so that, at rate c = k·p/2 / N refreshes per
		// interval, the chance that any of the N² observer/member pairs
		// goes unrefreshed for the whole window is negligible:
		// m ≈ ln(1000·N²)/c intervals.
		nn := len(peers) + 1
		spread := ceilLogK(nn, n.fanout)
		c := float64(n.fanout) * float64(n.piggyback/2) / float64(nn)
		margin := 2
		if c < 1 {
			margin = int(math.Ceil(math.Log(1000*float64(nn)*float64(nn)) / c))
		}
		n.effSuspect += sim.Duration(spread+margin) * n.cfg.Interval
	}
	n.members.SetSuspectAfter(n.effSuspect)
	n.members.SetGossipParams(n.cfg.Interval/2, int(hashName(n.src.HostName())%1_000_003), n.fanout)
	n.pick = n.pick[:0]
	for i := range n.peers {
		n.pick = append(n.pick, i)
	}
}

// Members returns the node's membership view.
func (n *Node) Members() *Membership { return n.members }

// Config returns the node's effective configuration.
func (n *Node) Config() Config { return n.cfg }

// Fanout reports how many peers each beacon interval reaches.
func (n *Node) Fanout() int { return n.fanout }

// Piggyback returns the per-beacon summary budget chosen by SetPeers.
func (n *Node) Piggyback() int { return n.piggyback }

// SuspectAfter reports the effective suspicion timeout: the configured
// one, stretched by the gossip spread margin when fanout < cluster size.
func (n *Node) SuspectAfter() sim.Duration { return n.effSuspect }

// Incarnation reports which boot of the host this node represents.
func (n *Node) Incarnation() uint32 { return n.inc }

// Stop shuts the node's daemon loops down at their next tick, letting
// Engine.Run quiesce. Idempotent.
func (n *Node) Stop() { n.stopped = true }

// Shutdown stops the daemons and releases the node's network ports, so a
// successor node — a revived host's fresh boot, with a bumped incarnation —
// can bind them. The membership table and guardian state die with the
// node, exactly as a reboot would lose them.
func (n *Node) Shutdown() {
	n.Stop()
	n.host.Unlisten(HBPort)
	n.host.Unlisten(MemberSyncPort)
	if n.Guard != nil {
		n.host.Unlisten(GuardPort)
		n.host.UnlistenStream(GuardSpoolPort)
	}
}

func (n *Node) now(t *sim.Task) sim.Time {
	if t != nil {
		return t.Now()
	}
	return n.eng.Now()
}

// beacon builds this instant's heartbeat in the node's scratch — the only
// host structures the control plane ever reads are its own.
func (n *Node) beacon(now sim.Time) *Heartbeat {
	n.seq++
	hb := &n.txHB
	hb.Host = n.src.HostName()
	hb.Seq = n.seq
	hb.Inc = n.inc
	hb.Load = n.src.RunQueueLen()
	hb.Procs = n.src.AppendProcStats(now, hb.Procs[:0])
	hb.Summaries = hb.Summaries[:0]
	if n.fanout < len(n.peers) {
		hb.Summaries = n.members.appendGossip(hb.Summaries, n.piggyback, now)
	}
	return hb
}

// choosePeers selects this interval's beacon targets into n.pick[:fanout]
// via a partial Fisher-Yates shuffle drawn from the engine PRNG —
// deterministic per seed. When fanout covers all peers no draws are made
// (and the permutation is left in place), so small clusters behave
// byte-for-byte as they did under all-peers beaconing.
func (n *Node) choosePeers() []int {
	if n.fanout >= len(n.peers) {
		return n.pick
	}
	for i := 0; i < n.fanout; i++ {
		j := i + int(n.eng.Rand()%uint64(len(n.pick)-i))
		n.pick[i], n.pick[j] = n.pick[j], n.pick[i]
	}
	return n.pick[:n.fanout]
}

// beaconLoop is hbd: every Interval, beacon to this interval's peers. Lost
// beacons are simply lost — the receiver's timeout does the detecting. A
// beacon to a dead host costs the sender the network timeout, exactly as
// a real datagram-and-ack heartbeat would.
func (n *Node) beaconLoop(t *sim.Task) {
	for !n.stopped {
		t.Sleep(n.cfg.Interval)
		if n.stopped {
			return
		}
		if n.host.Down() {
			continue // a partitioned host cannot beacon (nor hear itself)
		}
		now := t.Now()
		hb := n.beacon(now)
		raw := hb.AppendTo(n.encBuf[:0])
		n.encBuf = raw
		encAt := now
		n.members.Observe(hb, now) // the local view always includes self
		gossip := n.fanout < len(n.peers)
		if gossip && n.members.Len() < len(n.peers)+1 {
			n.syncExchange(t)
			now = t.Now()
		}
		for _, pi := range n.choosePeers() {
			if sendAt := t.Now(); sendAt != encAt {
				// Summary ages are deltas against the encode clock, and
				// every Call below sleeps at least a round trip — a Call
				// to a dead peer stalls a full network timeout. Sending
				// the stale bytes would make receivers reconstruct
				// hear-times inflated by the stall, manufacturing
				// post-mortem liveness that falsely refutes suspicion.
				// Re-age the same summary set (no reselection — gossip
				// budgets were already spent) and re-encode per send.
				for i := range hb.Summaries {
					hb.Summaries[i].Age += sim.Duration(sendAt - encAt)
				}
				raw = hb.AppendTo(n.encBuf[:0])
				n.encBuf = raw
				encAt = sendAt
			}
			_, err := n.host.Call(t, n.peers[pi], HBPort, raw) // best effort, by design
			if err != nil && gossip {
				// The beacon doubled as a probe and the peer is dead or
				// unreachable: suspect it and let the gossip channel carry
				// the news. Full-mesh clusters keep pure timeout suspicion
				// (every peer hears every beacon, no dissemination lag).
				n.members.Suspect(n.peers[pi], t.Now())
			}
			if n.cBeaconsOut != nil {
				n.cBeaconsOut.Inc()
				if err != nil {
					n.cBeaconFail.Inc()
				}
			}
		}
	}
}

// syncExchange is boot-time anti-entropy: push the full local member
// state to one random peer and pull its state back from the reply.
// Per-beacon piggybacking alone leaves a coupon-collector tail — a node
// needs one fresh summary per peer but receives random ones, so the last
// few peers take ~N·lnN/(k·p) intervals to show up. Push-pull full-state
// exchange closes that tail in O(log N) rounds, and the beaconLoop guard
// stops it once the roster is complete, so its steady-state cost is zero.
func (n *Node) syncExchange(t *sim.Task) {
	peer := n.peers[int(n.eng.Rand()%uint64(len(n.peers)))]
	now := t.Now()
	n.syncHB.Host = n.src.HostName()
	n.syncHB.Seq = n.seq
	n.syncHB.Inc = n.inc
	n.syncHB.Load = n.src.RunQueueLen()
	n.syncHB.Procs = n.syncHB.Procs[:0]
	n.syncHB.Summaries = n.members.AppendSummaries(n.syncHB.Summaries[:0], now)
	raw := n.syncHB.AppendTo(n.encBuf[:0])
	n.encBuf = raw
	if n.cSyncs != nil {
		n.cSyncs.Inc()
	}
	resp, err := n.host.Call(t, peer, MemberSyncPort, raw)
	if err != nil {
		// Like a beacon, the sync doubled as a probe.
		n.members.Suspect(peer, t.Now())
		return
	}
	rnow := n.now(t)
	if _, err := decodeHeartbeatObserve(resp, &n.rxHB, n.names, n.members, rnow); err != nil {
		return
	}
	n.members.Observe(&n.rxHB, rnow)
}

// handleSync is the MemberSyncPort listener: fold the pushed state in,
// then reply with everything we know — the pull half of push-pull. The
// reply is freshly allocated: the caller reads it after this handler
// returns, possibly after another sync has reused any shared scratch.
func (n *Node) handleSync(t *sim.Task, raw []byte) []byte {
	now := n.now(t)
	if _, err := decodeHeartbeatObserve(raw, &n.rxHB, n.names, n.members, now); err != nil {
		return nil
	}
	n.members.Observe(&n.rxHB, now)
	n.syncHB.Host = n.src.HostName()
	n.syncHB.Seq = n.seq
	n.syncHB.Inc = n.inc
	n.syncHB.Load = n.src.RunQueueLen()
	n.syncHB.Procs = n.syncHB.Procs[:0]
	n.syncHB.Summaries = n.members.AppendSummaries(n.syncHB.Summaries[:0], now)
	return n.syncHB.AppendTo(nil)
}

// ceilLog2 returns ⌈log₂ n⌉ (0 for n ≤ 1).
func ceilLog2(n int) int {
	k, p := 0, 1
	for p < n {
		p <<= 1
		k++
	}
	return k
}

// ceilLogK returns ⌈log_k n⌉ (1 for k < 2, matching "everything in one
// hop" only when the caller knows better; callers pass k ≥ 2).
func ceilLogK(n, k int) int {
	if k < 2 {
		return 1
	}
	s, p := 0, 1
	for p < n {
		p *= k
		s++
	}
	return s
}

// hashName is a tiny FNV-1a over the host name, for deterministic phase
// staggering and txn-id salting (no global state, no wall clock).
func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
