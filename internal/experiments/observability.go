package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"procmig/internal/core"
	"procmig/internal/kernel"
	"procmig/internal/netsim"
	"procmig/internal/obs"
	"procmig/internal/sim"
	"procmig/internal/vm"
)

// --- A10: observability -------------------------------------------------------

// A10Result proves the two observability claims end to end:
//
//  1. One streaming pre-copy migration yields ONE stitched trace: a single
//     root span under the transaction id, with child spans recorded on the
//     client, the source, and the destination — never a root per host.
//     The trace exports as parseable Chrome trace-event JSON.
//  2. The metrics instrumentation is free on the steady-state send path:
//     SendRound with pre-resolved counters attached allocates no more than
//     the uninstrumented path.
type A10Result struct {
	RootName    string // name of the migration's root span
	RootDetail  string // its outcome annotation
	Roots       int    // root spans named "migration" (must be 1)
	Spans       int    // total spans in the trace
	ClientSpans int    // children recorded on gamma (the invoking host)
	SourceSpans int    // children recorded on alpha (the source)
	DestSpans   int    // children recorded on beta (the destination)

	TimelineEvents int  // Chrome trace events exported
	TimelineValid  bool // the export re-parsed as JSON
	MetricRows     int  // registry rows after the run

	AllocsBase float64 // steady-state SendRound allocs, no instrumentation
	AllocsObs  float64 // same with StreamObs counters + per-link net counters
}

// A10Observability runs one pre-copy migration (fmigrate -s -r 2, invoked
// on gamma, alpha → beta) on a shared-registry cluster, then audits the
// trace, the timeline export and the hot-path allocation cost.
func A10Observability() (*A10Result, error) {
	c, err := boot(kernel.Config{TrackNames: true}, "alpha", "beta", "gamma")
	if err != nil {
		return nil, err
	}
	if err := c.InstallVM("/bin/a10hog", a6HogSrc(128<<10, 8<<10)); err != nil {
		return nil, err
	}
	var status int
	var fail error
	c.Eng.Go("driver", func(tk *sim.Task) {
		hog, serr := c.Spawn("alpha", nil, user, "/bin/a10hog")
		if serr != nil {
			fail = serr
			return
		}
		for hog.VM == nil && hog.State == kernel.ProcRunning {
			tk.Sleep(sim.Second)
		}
		tk.Sleep(2 * sim.Second)
		mig, serr := c.Spawn("gamma", nil, user, "/bin/fmigrate",
			"-p", fmt.Sprint(hog.PID), "-f", "alpha", "-t", "beta", "-s", "-r", "2")
		if serr != nil {
			fail = serr
			return
		}
		status = mig.AwaitExit(tk)
		for _, name := range c.Names() {
			for _, p := range c.Machine(name).Procs() {
				c.Machine(name).Kill(kernel.Creds{}, p.PID, kernel.SIGKILL)
			}
		}
	})
	if err := c.Run(); err != nil {
		return nil, err
	}
	if fail != nil {
		return nil, fail
	}
	if status != 0 {
		return nil, fmt.Errorf("fmigrate exited %d", status)
	}

	res := &A10Result{}
	tr := c.Obs.Tracer
	var root *obs.Span
	for _, sp := range tr.Roots() {
		if sp.Name == "migration" {
			res.Roots++
			root = sp
		}
	}
	if root == nil {
		return nil, fmt.Errorf("a10: no migration root span recorded")
	}
	if res.Roots != 1 {
		return nil, fmt.Errorf("a10: %d migration roots, want exactly 1", res.Roots)
	}
	res.RootName, res.RootDetail = root.Name, root.Detail
	for _, sp := range tr.Trace(root.Txn) {
		res.Spans++
		if sp.Parent == 0 {
			continue
		}
		switch sp.Host {
		case "gamma":
			res.ClientSpans++
		case "alpha":
			res.SourceSpans++
		case "beta":
			res.DestSpans++
		}
	}
	if res.SourceSpans == 0 || res.DestSpans == 0 {
		return nil, fmt.Errorf("a10: trace not stitched across hosts (alpha %d, beta %d children)",
			res.SourceSpans, res.DestSpans)
	}

	var buf bytes.Buffer
	if err := obs.WriteTimeline(&buf, tr, c.Names()); err != nil {
		return nil, err
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		return nil, fmt.Errorf("a10: timeline is not valid JSON: %v", err)
	}
	for _, ev := range events {
		if _, ok := ev["ph"].(string); !ok {
			return nil, fmt.Errorf("a10: timeline event without phase: %v", ev)
		}
	}
	res.TimelineEvents = len(events)
	res.TimelineValid = true
	res.MetricRows = len(c.Obs.Snapshot())

	if res.AllocsBase, err = a10SendAllocs(false); err != nil {
		return nil, err
	}
	if res.AllocsObs, err = a10SendAllocs(true); err != nil {
		return nil, err
	}
	return res, nil
}

// a10Sink assembles the far side of the alloc-measurement stream.
type a10Sink struct {
	asm *core.ImageAssembler
	err error
}

func (s *a10Sink) Chunk(_ *sim.Task, rec []byte) {
	if s.err == nil {
		s.err = s.asm.Apply(rec)
	}
}
func (s *a10Sink) Done(_ *sim.Task) []byte { return core.EncodeStreamStatus(0) }
func (s *a10Sink) Abort(_ *sim.Task)       {}

// a10SendAllocs measures steady-state SendRound heap allocations over a
// real netsim stream — the same loop BenchmarkAssembler pins at ≤2
// allocs/op — optionally with the full metrics instrumentation attached
// (pre-resolved StreamObs counters plus the network's per-link counters).
func a10SendAllocs(instrumented bool) (float64, error) {
	eng := sim.NewEngine()
	net := netsim.New(eng, 0, 0)
	src := net.AddHost("src")
	net.AddHost("dst")
	text := make([]byte, 256)
	data := make([]byte, 16*vm.PageSize)
	for i := range data {
		data[i] = byte(i >> 2)
	}
	var sink *a10Sink
	dstHost, _ := net.Host("dst")
	dstHost.ListenStream(9, func(_ *sim.Task, _ string, hello []byte) (netsim.StreamSink, error) {
		asm, err := core.NewImageAssembler(hello)
		if err != nil {
			return nil, err
		}
		sink = &a10Sink{asm: asm}
		return sink, nil
	})
	cpu := vm.New(text, data, vm.MinISA(text))
	cpu.SetDirtyTracking(true)
	hello := &core.StreamHello{PID: 1, TextLen: uint32(len(text)), DataLen: uint32(len(data))}
	st, err := src.OpenStream(nil, "dst", 9, hello.Encode())
	if err != nil {
		return 0, err
	}
	sess := &core.StreamSession{Stream: st}
	if instrumented {
		reg := obs.NewRegistry()
		sess.Obs = core.NewStreamObs(reg.Scope("src"))
		net.SetObs(reg)
	}
	costs := kernel.DefaultCosts()
	charge := func(sim.Duration) {}
	dataBase := vm.DataBase(len(text))
	var roundErr error
	round := func(i int) {
		cpu.WriteU32(dataBase+uint32(i%16)*vm.PageSize, uint32(i))
		if err := sess.SendRound(nil, cpu, costs, charge); err != nil && roundErr == nil {
			roundErr = err
		}
	}
	for i := 0; i < 32; i++ { // warm the pools, maps, and counter sets
		round(i)
	}
	avg := testing.AllocsPerRun(100, func() { round(1000) })
	if roundErr != nil {
		return 0, roundErr
	}
	if sink.err != nil {
		return 0, sink.err
	}
	return avg, nil
}
