// Package controller is the cluster's declarative desired-state layer:
// operators submit app specs ("app X: N replicas of program P, spread
// placement, anti-affinity, host constraints") and a reconcile loop
// continuously diffs desired against observed state and converges the
// cluster through the existing migration machinery — spawning missing
// replicas, migrating misplaced ones, killing excess ones, and replacing
// dead ones (via guardd protection when the app asks for it). It also
// owns the two rolling operations a fleet needs for maintenance: host
// drains (migrate everything off a host, rate-limited in waves with a
// concurrency cap and per-wave settle barriers) and deploy-style replace
// waves (rolling restart of an app's replicas).
//
// The controller turns the paper's one-shot operator-driven `migrate`
// verb into a continuously applied policy, in the mold of the
// Flynn/Kubernetes desired-state/reconcile split: desired state is a
// plain data structure the operator edits; observed state is rebuilt
// every round from the disseminated heartbeat view (the gossip LoadView
// plus the per-host process census it carries); and the reconciler is a
// pure diff whose actions all ride the transactional migd verbs, so a
// crashed or raced action can never lose a replica — at worst it is
// retried or healed a round later.
//
// Like the Balancer and NightScheduler, the controller is
// message-passing-honest about what it knows: replica liveness, host
// liveness and load all come from the heartbeat view, never from peeking
// at peer kernels. Actions go through an Actuator interface so the policy
// core stays independent of the cluster assembly (and testable against
// fakes).
package controller

import (
	"fmt"

	"procmig/internal/sim"
)

// Placement policies.
const (
	// PolicySpread places each new replica on the candidate host carrying
	// the fewest replicas of the app (ties: fewest controller-owned
	// replicas, then lowest load, then name). The default.
	PolicySpread = "spread"
	// PolicyBinpack packs replicas onto the candidate host already
	// carrying the most controller-owned replicas (subject to MaxPerHost
	// and anti-affinity), so the fleet concentrates on few hosts and the
	// rest stay idle — the layout night-time batch policies want.
	PolicyBinpack = "binpack"
)

// AppSpec is one declarative application: what the operator wants true of
// the cluster, not how to make it true. JSON-able so scenarios and
// operators can submit specs as data.
type AppSpec struct {
	Name string `json:"name"`
	// Path is the program every replica runs, installed at the same path
	// on every machine (the paper's /bin convention).
	Path     string `json:"path"`
	Replicas int    `json:"replicas"`
	// Policy is PolicySpread (default when empty) or PolicyBinpack.
	Policy string `json:"policy,omitempty"`
	// AntiAffinity caps the app at one replica per host.
	AntiAffinity bool `json:"anti_affinity,omitempty"`
	// MaxPerHost caps replicas of this app on one host (0 = no cap;
	// AntiAffinity is the special case MaxPerHost=1).
	MaxPerHost int `json:"max_per_host,omitempty"`
	// Hosts, when non-empty, is an allowlist: replicas may only be placed
	// on these hosts. Avoid is a denylist applied on top.
	Hosts []string `json:"hosts,omitempty"`
	Avoid []string `json:"avoid,omitempty"`
	// Protect registers every replica with guardd for buddy
	// delta-checkpoints: a crashed host's replicas are restarted by their
	// buddy guardian (arbitrated, exactly-once) and the controller adopts
	// the restored copy instead of blindly respawning.
	Protect bool `json:"protect,omitempty"`
}

// Validate rejects malformed specs loudly, before they reach the
// reconcile loop.
func (s *AppSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("controller: app spec with empty name")
	}
	if s.Path == "" {
		return fmt.Errorf("controller: app %q: empty program path", s.Name)
	}
	if s.Replicas <= 0 {
		return fmt.Errorf("controller: app %q: replicas must be positive, got %d", s.Name, s.Replicas)
	}
	switch s.Policy {
	case "", PolicySpread, PolicyBinpack:
	default:
		return fmt.Errorf("controller: app %q: unknown policy %q (want %q or %q)",
			s.Name, s.Policy, PolicySpread, PolicyBinpack)
	}
	if s.MaxPerHost < 0 {
		return fmt.Errorf("controller: app %q: negative max_per_host", s.Name)
	}
	if s.AntiAffinity && s.MaxPerHost > 1 {
		return fmt.Errorf("controller: app %q: anti_affinity contradicts max_per_host=%d",
			s.Name, s.MaxPerHost)
	}
	return nil
}

// maxPerHost resolves the effective per-host cap (0 = unlimited).
func (s *AppSpec) maxPerHost() int {
	if s.AntiAffinity {
		return 1
	}
	return s.MaxPerHost
}

// allowed reports whether the spec's host constraints admit host.
func (s *AppSpec) allowed(host string) bool {
	for _, a := range s.Avoid {
		if a == host {
			return false
		}
	}
	if len(s.Hosts) == 0 {
		return true
	}
	for _, h := range s.Hosts {
		if h == host {
			return true
		}
	}
	return false
}

// ReplicaStatus is one replica's row in a status report.
type ReplicaStatus struct {
	Slot  int    `json:"slot"`
	Host  string `json:"host"`
	PID   int    `json:"pid"`
	State string `json:"state"` // "pending", "live", "moving"
	Gen   int    `json:"gen"`
}

// AppStatus is one app's observed-vs-desired summary.
type AppStatus struct {
	Name     string          `json:"name"`
	Desired  int             `json:"desired"`
	Live     int             `json:"live"`
	Pending  int             `json:"pending"`
	Gen      int             `json:"gen"` // bumped by Replace
	Replicas []ReplicaStatus `json:"replicas"`
}

// Converged reports whether the app needs no further reconciliation.
func (a *AppStatus) Converged() bool { return a.Live == a.Desired && a.Pending == 0 }

// DrainStatus is one rolling host drain's progress.
type DrainStatus struct {
	Host      string       `json:"host"`
	StartedAt sim.Time     `json:"started_at"`
	Waves     int          `json:"waves"`
	Moved     int          `json:"moved"`
	Failed    int          `json:"failed"`
	Remaining int          `json:"remaining"` // controller-owned replicas still on the host
	Done      bool         `json:"done"`
	Makespan  sim.Duration `json:"makespan"` // start → empty (0 until done)
}

// Status is the whole controller's state at one instant.
type Status struct {
	Round  int64         `json:"round"`
	Apps   []AppStatus   `json:"apps"`
	Drains []DrainStatus `json:"drains,omitempty"`
}

// Converged reports whether every app is at desired state and every
// drain has finished.
func (s *Status) Converged() bool {
	for i := range s.Apps {
		if !s.Apps[i].Converged() {
			return false
		}
	}
	for i := range s.Drains {
		if !s.Drains[i].Done {
			return false
		}
	}
	return true
}
