package core

import (
	"encoding/binary"
	"errors"

	"procmig/internal/vm"
)

// Byte-oriented LZ77 compression for streamed pages, snappy-style: greedy
// matching against a small hash table of 4-byte sequences, emitting runs
// of literals and back-references. The framing is self-synchronizing in
// the loud-failure sense: every frame opens with a magic byte, the exact
// uncompressed length, and a content checksum, and the decoder rejects
// any token stream that overruns its declared output, references before
// the start, leaves trailing garbage, or fails the checksum — corrupt
// input is an error, never silently wrong bytes. Callers are expected to
// fall back to a raw record when compression does not pay (AppendLZ can
// expand incompressible input by up to 1/128 plus the header).

// lzMagic leads every frame. Deliberately not a printable run-length tag
// so truncated raw pages are unlikely to alias a frame.
const lzMagic = 0xC5

// lzHeaderLen is magic + u32 uncompressed length + u32 checksum.
const lzHeaderLen = 9

// lzMaxLen bounds the declared uncompressed length a decoder will honor:
// big enough for any page or text chunk, small enough that fuzzed frames
// cannot ask for huge allocations.
const lzMaxLen = 1 << 20

const (
	lzMinMatch  = 4                 // shortest back-reference worth a 3-byte token
	lzMaxCopy   = lzMinMatch + 0x7f // longest single copy token
	lzMaxOffset = 1<<16 - 1         // 2-byte offsets
	lzTableBits = 12                // 4096-entry candidate table
)

// ErrLZCorrupt rejects a frame whose token stream or checksum is broken.
var ErrLZCorrupt = errors.New("core: corrupt LZ frame")

func lzHash(v uint32) uint32 {
	return (v * 0x1e35a7bd) >> (32 - lzTableBits)
}

// AppendLZ compresses src into one frame appended to dst. The output is a
// pure function of src (greedy, deterministic), so identical pages always
// produce identical frames — the A9 determinism assertion rides on this.
func AppendLZ(dst, src []byte) []byte {
	dst = append(dst, lzMagic)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(src)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(vm.HashPage(src)))

	var table [1 << lzTableBits]int32 // candidate position + 1; 0 = empty
	emitLiterals := func(b []byte, lit []byte) []byte {
		for len(lit) > 0 {
			n := len(lit)
			if n > 128 {
				n = 128
			}
			b = append(b, byte(n-1)) // 0x00..0x7F
			b = append(b, lit[:n]...)
			lit = lit[n:]
		}
		return b
	}

	i, litStart := 0, 0
	for i+lzMinMatch <= len(src) {
		cur := binary.BigEndian.Uint32(src[i:])
		h := lzHash(cur)
		cand := int(table[h]) - 1
		table[h] = int32(i + 1)
		if cand < 0 || i-cand > lzMaxOffset ||
			binary.BigEndian.Uint32(src[cand:]) != cur {
			i++
			continue
		}
		match := lzMinMatch
		for i+match < len(src) && src[cand+match] == src[i+match] {
			match++
		}
		dst = emitLiterals(dst, src[litStart:i])
		off := i - cand
		for rem := match; rem > 0; {
			l := rem
			if l > lzMaxCopy {
				l = lzMaxCopy
				// Never strand a tail shorter than a legal copy token.
				if tail := rem - l; tail > 0 && tail < lzMinMatch {
					l -= lzMinMatch - tail
				}
			}
			dst = append(dst, 0x80|byte(l-lzMinMatch), byte(off>>8), byte(off))
			rem -= l
		}
		i += match
		litStart = i
	}
	return emitLiterals(dst, src[litStart:])
}

// DecompressLZInto decodes one frame into dst, whose length must equal the
// frame's declared uncompressed length. dst may hold stale bytes: the
// decoder writes it strictly left to right and back-references read only
// the already-decoded prefix.
func DecompressLZInto(dst, frame []byte) error {
	n, body, sum, err := lzHeader(frame)
	if err != nil {
		return err
	}
	if n != len(dst) {
		return ErrLZCorrupt
	}
	pos := 0
	for len(body) > 0 {
		tag := body[0]
		body = body[1:]
		if tag < 0x80 { // literal run of tag+1 bytes
			l := int(tag) + 1
			if l > len(body) || pos+l > len(dst) {
				return ErrLZCorrupt
			}
			copy(dst[pos:], body[:l])
			pos += l
			body = body[l:]
			continue
		}
		if len(body) < 2 {
			return ErrLZCorrupt
		}
		l := int(tag&0x7f) + lzMinMatch
		off := int(body[0])<<8 | int(body[1])
		body = body[2:]
		if off == 0 || off > pos || pos+l > len(dst) {
			return ErrLZCorrupt
		}
		// Byte-at-a-time on purpose: overlapping references (off < l)
		// replicate the just-written bytes, the classic LZ run encoding.
		for ; l > 0; l-- {
			dst[pos] = dst[pos-off]
			pos++
		}
	}
	if pos != len(dst) {
		return ErrLZCorrupt
	}
	if uint32(vm.HashPage(dst)) != sum {
		return ErrLZCorrupt
	}
	return nil
}

// DecompressLZ decodes one frame into a fresh slice.
func DecompressLZ(frame []byte) ([]byte, error) {
	n, _, _, err := lzHeader(frame)
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	if err := DecompressLZInto(out, frame); err != nil {
		return nil, err
	}
	return out, nil
}

// lzHeader validates and splits a frame, returning the declared length,
// the token body, and the checksum.
func lzHeader(frame []byte) (n int, body []byte, sum uint32, err error) {
	if len(frame) < lzHeaderLen || frame[0] != lzMagic {
		return 0, nil, 0, ErrLZCorrupt
	}
	n = int(binary.BigEndian.Uint32(frame[1:]))
	if n > lzMaxLen {
		return 0, nil, 0, ErrLZCorrupt
	}
	return n, frame[lzHeaderLen:], binary.BigEndian.Uint32(frame[5:]), nil
}
