package kernel

import (
	"fmt"

	"procmig/internal/errno"
	"procmig/internal/sim"
	"procmig/internal/tty"
	"procmig/internal/vfs"
	"procmig/internal/vm"
)

// Creds are a process's user credentials.
type Creds struct {
	UID, GID   int
	EUID, EGID int
}

// Root reports whether the effective user is the superuser.
func (c Creds) Root() bool { return c.EUID == 0 }

// ProcState is a process's lifecycle state.
type ProcState int

const (
	ProcRunning ProcState = iota
	ProcZombie
	ProcDead
)

func (s ProcState) String() string {
	switch s {
	case ProcRunning:
		return "running"
	case ProcZombie:
		return "zombie"
	default:
		return "dead"
	}
}

// procExit unwinds a process's goroutine when it dies.
type procExit struct {
	status int
	signal Signal // non-zero if killed by a signal
}

// Proc is one process: the proc structure plus the swappable u-area.
type Proc struct {
	M    *Machine
	PID  int
	PPID int
	Cmd  string

	Creds Creds
	// CWD is the paper's addition to the user structure: the full path
	// name of the current directory, maintained by chdir (§5.1). It is a
	// lexical combination of the names the process used — symlinks are
	// not resolved.
	CWD string
	FDs [NOFILE]*File
	TTY *tty.Terminal

	// VM is the machine-code image for VM processes; nil for hosted
	// programs (which run Go code against the syscall interface).
	VM *vm.CPU
	// ExecEntry remembers the executable's entry point (recorded in core
	// dumps so undump can rebuild a runnable executable).
	ExecEntry uint32

	sigPending uint32
	SigActions [NSIG]SigAction

	State      ProcState
	ExitStatus int
	KilledBy   Signal

	task      *sim.Task
	blockedOn *sim.Queue
	sleepQ    sim.Queue
	childQ    sim.Queue // parent blocks here in wait()
	ExitQ     sim.Queue // external observers of process exit

	UTime     sim.Duration
	STime     sim.Duration
	StartedAt sim.Time

	// §7 extension state: identity before migration.
	Migrated bool
	OldPID   int
	OldHost  string

	// Dumping marks the freeze window: true for the whole of the SIGDUMP
	// hook — classic dump+hold, or the streaming freeze → final-delta →
	// commit sequence. The SLI plane's request generators read it: a
	// request arriving while its server is frozen cannot be served and
	// queues, which is exactly the client-visible stall the paper never
	// measured.
	Dumping bool

	// Syscall-restart bookkeeping: while a VM process is inside a system
	// call, syscallPC holds the address of the SYS instruction so a dump
	// taken mid-syscall resumes by re-executing the trap (BSD restart
	// semantics — the paper's test program is dumped while blocked in
	// read and must re-issue it after rest_proc).
	inSyscall bool
	syscallPC uint32

	hosted     HostedProg
	hostedArgs []string
}

// Task returns the process's simulation task.
func (p *Proc) Task() *sim.Task { return p.task }

// sysCPU consumes CPU charged as system time.
func (p *Proc) sysCPU(d sim.Duration) {
	if d <= 0 {
		return
	}
	p.M.kobs.sysTimeUS.Add(int64(d))
	p.M.cpu.Use(p.task, d, func(s sim.Duration) { p.STime += s })
}

// userCPU consumes CPU charged as user time.
func (p *Proc) userCPU(d sim.Duration) {
	if d <= 0 {
		return
	}
	p.M.cpu.Use(p.task, d, func(s sim.Duration) { p.UTime += s })
}

// ChargeSys consumes CPU charged as system time — exported for the
// kernel-adjacent migration code in the core package.
func (p *Proc) ChargeSys(d sim.Duration) { p.sysCPU(d) }

// SleepIO blocks the process for d of I/O wait (no CPU consumed) —
// exported for the kernel-adjacent dump code.
func (p *Proc) SleepIO(d sim.Duration) {
	if d > 0 {
		p.task.Sleep(d)
	}
}

// RewindSyscall backs the VM program counter up to the SYS instruction if
// the process is currently inside a system call, so that an image dumped
// mid-syscall re-executes the call on restart (BSD syscall-restart
// semantics). The dump and core paths call this before snapshotting.
func (p *Proc) RewindSyscall() {
	if p.inSyscall && p.VM != nil {
		p.VM.PC = p.syscallPC
	}
}

// CheckAccess applies the owner/group/other permission bits (exported for
// kernel-adjacent code). want is a bitmask: 4 read, 2 write, 1 execute.
func CheckAccess(attr vfs.Attr, c Creds, want uint16) errno.Errno {
	return checkAccess(attr, c, want)
}

// die terminates the process immediately by unwinding its goroutine.
func (p *Proc) die(status int, sig Signal) {
	panic(procExit{status: status, signal: sig})
}

// --- Creation ---------------------------------------------------------------

// SpawnSpec describes a process to create.
type SpawnSpec struct {
	Path  string   // executable to run
	Args  []string // argv (Args[0] conventionally the program name)
	Env   []string // environment ("k=v")
	Creds Creds
	CWD   string
	TTY   *tty.Terminal
	PPID  int
	// InheritFDs, if non-nil, is copied into the child's descriptor table
	// (sharing the open file structures, Unix-style).
	InheritFDs []*File
}

// Spawn creates a process running spec.Path — the kernel-level equivalent
// of fork+exec, used by boot code, rshd and tests.
func (m *Machine) Spawn(spec SpawnSpec) (*Proc, error) {
	p := m.newProc(spec.Creds, spec.CWD, spec.TTY)
	p.PPID = spec.PPID
	for i, f := range spec.InheritFDs {
		if i >= NOFILE {
			break
		}
		if f != nil {
			f.refs++
			p.FDs[i] = f
		}
	}
	p.Cmd = spec.Path
	m.eng.Go(fmt.Sprintf("%s:pid%d:%s", m.Name, p.PID, spec.Path), func(t *sim.Task) {
		p.task = t
		p.StartedAt = t.Now()
		p.run(func() {
			p.sysCPU(m.Costs.SpawnBase)
			if e := p.execve(spec.Path, spec.Args, spec.Env); e != 0 {
				p.die(126, 0) // exec failed
			}
			p.runImage()
		})
	})
	return p, nil
}

// newProc allocates a process table slot.
func (m *Machine) newProc(creds Creds, cwd string, term *tty.Terminal) *Proc {
	pid := m.nextPid
	m.nextPid++
	if cwd == "" {
		cwd = "/"
	}
	p := &Proc{M: m, PID: pid, Creds: creds, CWD: cwd, TTY: term, State: ProcRunning}
	m.procs[pid] = p
	return p
}

// run executes body with exit unwinding installed.
func (p *Proc) run(body func()) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		ex, ok := r.(procExit)
		if !ok {
			panic(r)
		}
		p.finish(ex)
	}()
	body()
	p.finish(procExit{status: 0})
}

// runImage runs whatever image execve installed: the VM interpreter loop
// or the hosted program body. It does not return (exits via die).
func (p *Proc) runImage() {
	for {
		if p.VM != nil {
			p.runVM()
		} else if p.hosted != nil {
			fn, args := p.hosted, p.hostedArgs
			p.hosted = nil
			status := fn(&Sys{p: p}, args)
			p.die(status, 0)
		} else {
			p.die(126, 0)
		}
	}
}

// finish turns the process into a zombie and handles reaping.
func (p *Proc) finish(ex procExit) {
	m := p.M
	for fd := range p.FDs {
		if p.FDs[fd] != nil {
			p.closeFile(p.FDs[fd])
			p.FDs[fd] = nil
		}
	}
	p.ExitStatus = ex.status
	p.KilledBy = ex.signal
	p.State = ProcZombie
	p.VM = nil

	// Reparent children to nobody; they self-reap on exit.
	for _, q := range m.procs {
		if q != p && q.PPID == p.PID {
			q.PPID = 0
		}
	}
	parent, ok := m.procs[p.PPID]
	if p.PPID == 0 || !ok || parent.State != ProcRunning {
		// Nobody will wait for us.
		p.State = ProcDead
		delete(m.procs, p.PID)
	} else {
		parent.postSignal(SIGCHLD)
		parent.childQ.WakeAll()
	}
	p.ExitQ.WakeAll()
}

// AwaitExit blocks t until the process has exited, returning its status.
// It is for simulation drivers (tests, benchmarks), not simulated code.
func (p *Proc) AwaitExit(t *sim.Task) int {
	for p.State == ProcRunning {
		t.Wait(&p.ExitQ)
	}
	return p.ExitStatus
}

// AwaitExitOrMigrated blocks t until the process exits or is overlaid by
// rest_proc. It reports (status, migrated). rshd uses this: a successful
// restart never "completes" — it has become the migrated process.
func (p *Proc) AwaitExitOrMigrated(t *sim.Task) (int, bool) {
	for p.State == ProcRunning && !p.Migrated {
		t.Wait(&p.ExitQ)
	}
	if p.Migrated && p.State == ProcRunning {
		return 0, true
	}
	return p.ExitStatus, p.Migrated
}

// NotifyMigrated marks the process as successfully overlaid by rest_proc
// and wakes anyone waiting on it (parents in WaitRestarted, rshd).
func (p *Proc) NotifyMigrated(oldPID int, oldHost string) {
	p.Migrated = true
	p.OldPID = oldPID
	if oldHost != "" {
		p.OldHost = oldHost
	}
	if parent, ok := p.M.procs[p.PPID]; ok {
		parent.childQ.WakeAll()
	}
	p.ExitQ.WakeAll()
}

// --- Signals ----------------------------------------------------------------

// postSignal marks sig pending and wakes the process if it is blocked.
func (p *Proc) postSignal(sig Signal) {
	if sig <= 0 || sig >= NSIG || p.State != ProcRunning {
		return
	}
	p.sigPending |= 1 << uint(sig)
	if p.blockedOn != nil && p.task != nil {
		p.blockedOn.WakeTask(p.task)
	}
}

// SignalPending reports whether sig is pending (tests).
func (p *Proc) SignalPending(sig Signal) bool {
	return p.sigPending&(1<<uint(sig)) != 0
}

// deliverSignals processes pending signals in the process's own context.
// Fatal dispositions do not return. It reports whether any signal was
// delivered to a handler (so interrupted syscalls can return EINTR).
func (p *Proc) deliverSignals() bool {
	caught := false
	for sig := Signal(1); sig < NSIG; sig++ {
		bit := uint32(1) << uint(sig)
		if p.sigPending&bit == 0 {
			continue
		}
		p.sigPending &^= bit
		act := p.SigActions[sig]
		if sig == SIGKILL {
			act = SigAction{} // SIGKILL cannot be caught or ignored
		}
		switch act.Disposition {
		case SigIgnore:
			continue
		case SigCatch:
			p.M.kobs.sigCaught.Inc()
			p.sysCPU(p.M.Costs.SignalDeliver)
			if p.VM != nil {
				// Push the interrupted PC and enter the handler; the
				// handler returns with RET.
				sp := p.VM.R[vm.RegSP] - 4
				if p.VM.WriteU32(sp, p.VM.PC) {
					p.VM.R[vm.RegSP] = sp
					p.VM.PC = act.Handler
				}
			}
			caught = true
		default:
			if ignoredByDefault[sig] {
				continue
			}
			switch {
			case sig == SIGDUMP:
				if p.M.Hooks.Dump != nil {
					p.M.trace(p, "sigdump", "dumping to /usr/tmp")
					// A transactional dump may abort and resume the
					// process; remember the pre-rewind PC so an
					// in-progress syscall is not re-executed on resume.
					var resumePC uint32
					if p.VM != nil {
						resumePC = p.VM.PC
					}
					p.RewindSyscall()
					p.M.kobs.dumps.Inc()
					p.Dumping = true
					p.M.kobs.frozen.Add(1)
					start, scpu := p.task.Now(), p.STime
					e := p.M.Hooks.Dump(p)
					p.Dumping = false
					p.M.kobs.frozen.Add(-1)
					p.M.Metrics.LastDump = OpTiming{
						CPU:  p.STime - scpu,
						Real: sim.Duration(p.task.Now() - start),
					}
					p.M.kobs.dumpReal.Observe(int64(p.M.Metrics.LastDump.Real))
					if e == errno.ERESTART {
						p.M.kobs.dumpAborts.Inc()
						// The migration aborted with the process intact:
						// put the PC back and keep running exactly where
						// it was.
						if p.VM != nil {
							p.VM.PC = resumePC
						}
						p.M.trace(p, "sigdump", "migration aborted, resuming")
						continue
					}
				}
				p.die(0, sig)
			case coreSignals[sig]:
				p.RewindSyscall()
				p.writeCore()
				p.die(0, sig)
			default:
				p.die(0, sig)
			}
		}
	}
	return caught
}

// Kill posts sig to the target process, with the BSD permission check:
// the superuser, or a sender whose real or effective uid matches the
// target's real or effective uid.
func (m *Machine) Kill(sender Creds, pid int, sig Signal) errno.Errno {
	target, ok := m.procs[pid]
	if !ok || target.State != ProcRunning {
		return errno.ESRCH
	}
	if !sender.Root() &&
		sender.UID != target.Creds.UID && sender.UID != target.Creds.EUID &&
		sender.EUID != target.Creds.UID && sender.EUID != target.Creds.EUID {
		return errno.EPERM
	}
	m.kobs.sigPosted.Inc()
	target.postSignal(sig)
	m.trace(target, "signal", "%v posted by uid %d", sig, sender.EUID)
	return 0
}

// --- ps ---------------------------------------------------------------------

// ProcInfo is one ps row.
type ProcInfo struct {
	PID, PPID int
	UID       int
	State     ProcState
	Cmd       string
	UTime     sim.Duration
	STime     sim.Duration
	Started   sim.Time
}

// PS lists the process table.
func (m *Machine) PS() []ProcInfo {
	var out []ProcInfo
	for _, p := range m.Procs() {
		out = append(out, ProcInfo{
			PID: p.PID, PPID: p.PPID, UID: p.Creds.UID, State: p.State,
			Cmd: p.Cmd, UTime: p.UTime, STime: p.STime, Started: p.StartedAt,
		})
	}
	return out
}

// --- Blocking helpers --------------------------------------------------------

// blockOn parks the process on q until woken; signals are delivered both
// before sleeping (the classic check-before-sleep rule — a signal posted
// while the process was transiently unparked must not be lost) and on
// wake. Delivery may kill the process or return true for "interrupted".
func (p *Proc) blockOn(q *sim.Queue) bool {
	if p.deliverSignals() {
		return true
	}
	p.blockedOn = q
	p.task.Wait(q)
	p.blockedOn = nil
	return p.deliverSignals()
}

// sleep pauses the process for d of virtual time, interruptibly.
func (p *Proc) sleep(d sim.Duration) {
	deadline := p.task.Now() + sim.Time(d)
	for {
		p.deliverSignals()
		remaining := sim.Duration(deadline - p.task.Now())
		if remaining <= 0 {
			return
		}
		p.blockedOn = &p.sleepQ
		woken := p.task.WaitTimeout(&p.sleepQ, remaining)
		p.blockedOn = nil
		p.deliverSignals()
		if !woken {
			return
		}
	}
}

// EnsureFile is a helper for vfs.Place-based files opened by kernel code.
func placeIsLocal(m *Machine, pl vfs.Place) bool { return pl.FS == vfs.BaseFS(m.localFS) }
