// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine owns a virtual clock and a set of actors (Tasks). Each actor is
// a goroutine, but exactly one actor runs at any moment: an actor runs until
// it parks in an engine primitive (Sleep, Wait, ...), at which point control
// hands back to the engine loop, which advances the clock to the next event
// and resumes the corresponding actor. Ties are broken by event sequence
// number, so a given program produces identical virtual timings on every run.
//
// All primitives must be called from an actor goroutine; calling them from
// outside (including from the goroutine running Engine.Run) corrupts the
// handoff protocol.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// Time is a point in virtual time, in microseconds since engine start.
type Time int64

// Duration is a span of virtual time in microseconds.
type Duration int64

// Convenience duration units.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", float64(d)/float64(Second))
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%dµs", int64(d))
	}
}

// event is a scheduled resumption of a task.
type event struct {
	t         Time
	seq       int64
	task      *Task
	canceled  bool
	fromQueue bool // resumption is a Queue wake, not a timer
	index     int  // heap index
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator.
type Engine struct {
	now     Time
	events  eventHeap
	seq     int64
	handoff chan struct{} // actor -> engine: "I parked or exited"
	nlive   int
	tasks   map[*Task]struct{}
	current *Task
	rng     uint64 // splitmix64 state, see rand.go
}

// Current returns the task that is currently executing, or nil when called
// from outside any actor (e.g. during setup before Run). Exactly one task
// runs at a time, so layers that cannot thread a *Task through their
// interfaces (the filesystem stack) use this to find the ambient task.
func (e *Engine) Current() *Task { return e.current }

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{
		handoff: make(chan struct{}),
		tasks:   make(map[*Task]struct{}),
	}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

func (e *Engine) schedule(t *Task, at Time) *event {
	e.seq++
	ev := &event{t: at, seq: e.seq, task: t}
	heap.Push(&e.events, ev)
	return ev
}

func (e *Engine) cancel(ev *event) {
	if ev != nil {
		ev.canceled = true
	}
}

// Task is an actor: a goroutine interleaved by the engine.
type Task struct {
	eng  *Engine
	name string

	resume chan wakeCause

	// waiting state, valid while parked in Wait/WaitTimeout
	wq          *Queue
	timeout     *event
	pendingWake *event
}

type wakeCause int

const (
	wakeTimer wakeCause = iota // scheduled event fired (Sleep, timeout)
	wakeQueue                  // woken from a Queue
)

// Name reports the task's debug name.
func (t *Task) Name() string { return t.name }

// Engine reports the engine the task belongs to.
func (t *Task) Engine() *Engine { return t.eng }

// Now reports current virtual time.
func (t *Task) Now() Time { return t.eng.now }

// Go spawns a new actor that begins running at the current virtual time,
// after all currently scheduled same-time events.
func (e *Engine) Go(name string, fn func(*Task)) *Task {
	return e.GoAfter(name, 0, fn)
}

// GoAfter spawns a new actor that begins running after delay d.
func (e *Engine) GoAfter(name string, d Duration, fn func(*Task)) *Task {
	t := &Task{eng: e, name: name, resume: make(chan wakeCause)}
	e.nlive++
	e.tasks[t] = struct{}{}
	e.schedule(t, e.now+Time(d))
	go func() {
		<-t.resume
		fn(t)
		e.nlive--
		delete(e.tasks, t)
		e.handoff <- struct{}{}
	}()
	return t
}

// park hands control to the engine and blocks until resumed.
func (t *Task) park() wakeCause {
	t.eng.handoff <- struct{}{}
	return <-t.resume
}

// Sleep advances the actor's virtual time by d. Negative durations sleep
// zero time (but still yield to other same-time events).
func (t *Task) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	t.eng.schedule(t, t.eng.now+Time(d))
	t.park()
}

// Yield lets every other event scheduled for the current instant run first.
func (t *Task) Yield() { t.Sleep(0) }

// Queue is a wait queue (condition-variable analogue). The zero value is
// ready to use.
type Queue struct {
	waiters []*Task
}

// Len reports how many tasks are blocked on the queue.
func (q *Queue) Len() int { return len(q.waiters) }

// Wait parks the actor until another actor calls Wake/WakeAll on q.
func (t *Task) Wait(q *Queue) {
	q.waiters = append(q.waiters, t)
	t.wq = q
	cause := t.park()
	if cause != wakeQueue {
		panic("sim: Wait resumed by timer")
	}
	t.wq = nil
	t.pendingWake = nil
}

// WaitTimeout parks the actor until woken from q or until d elapses.
// It reports true if woken, false on timeout. If a wake and the timeout
// coincide at the same virtual instant the wake wins.
func (t *Task) WaitTimeout(q *Queue, d Duration) bool {
	q.waiters = append(q.waiters, t)
	t.wq = q
	t.timeout = t.eng.schedule(t, t.eng.now+Time(d))
	cause := t.park()
	t.wq = nil
	if cause == wakeQueue {
		t.eng.cancel(t.timeout)
		t.timeout = nil
		t.pendingWake = nil
		return true
	}
	t.timeout = nil
	if t.pendingWake != nil {
		// A Wake was delivered at the same instant the timer fired but the
		// timer event was dequeued first. Honor the wake: the waker already
		// removed us from the queue and counted us as woken.
		t.eng.cancel(t.pendingWake)
		t.pendingWake = nil
		return true
	}
	// Timed out: remove self from the queue.
	q.remove(t)
	return false
}

func (q *Queue) remove(t *Task) {
	for i, w := range q.waiters {
		if w == t {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return
		}
	}
}

// Wake wakes up to n tasks from the queue, in FIFO order. It must be called
// from a running actor (or from a syscall executed on behalf of one). Woken
// tasks resume at the current virtual time, after the caller next parks.
func (q *Queue) Wake(n int) int {
	woken := 0
	for woken < n && len(q.waiters) > 0 {
		t := q.waiters[0]
		q.waiters = q.waiters[1:]
		t.deliverWake()
		woken++
	}
	return woken
}

// WakeAll wakes every waiting task.
func (q *Queue) WakeAll() int { return q.Wake(len(q.waiters)) }

// WakeTask wakes t if it is blocked on q (used to deliver signals to a
// process blocked in a specific wait). It reports whether t was found.
func (q *Queue) WakeTask(t *Task) bool {
	for i, w := range q.waiters {
		if w == t {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			t.deliverWake()
			return true
		}
	}
	return false
}

func (t *Task) deliverWake() {
	e := t.eng
	e.seq++
	ev := &event{t: e.now, seq: e.seq, task: t, fromQueue: true}
	heap.Push(&e.events, ev)
	t.pendingWake = ev
}

// StallError is returned by Run when no events remain but actors are still
// blocked (a deadlock in the simulated system).
type StallError struct {
	At      Time
	Blocked []string
}

func (s *StallError) Error() string {
	return fmt.Sprintf("sim: stalled at t=%d with %d blocked task(s): %v", s.At, len(s.Blocked), s.Blocked)
}

// Run drives the simulation until no live tasks remain. It returns a
// *StallError if tasks remain blocked with no pending events.
func (e *Engine) Run() error { return e.RunUntil(Time(1)<<62 - 1) }

// RunUntil drives the simulation until no live tasks remain or the clock
// would pass limit. Events beyond limit stay queued.
func (e *Engine) RunUntil(limit Time) error {
	for {
		// Discard canceled events at the top.
		for len(e.events) > 0 && e.events[0].canceled {
			heap.Pop(&e.events)
		}
		if len(e.events) == 0 {
			if e.nlive > 0 {
				return &StallError{At: e.now, Blocked: e.blockedNames()}
			}
			return nil
		}
		if e.events[0].t > limit {
			return nil
		}
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.t
		cause := wakeTimer
		if ev.fromQueue {
			cause = wakeQueue
		}
		e.current = ev.task
		ev.task.resume <- cause
		<-e.handoff
		e.current = nil
	}
}

func (e *Engine) blockedNames() []string {
	var names []string
	for t := range e.tasks {
		names = append(names, t.name)
	}
	sort.Strings(names)
	return names
}
