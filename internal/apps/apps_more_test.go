package apps_test

import (
	"fmt"
	"strings"
	"testing"

	"procmig/internal/apps"
	"procmig/internal/cluster"
	"procmig/internal/ha"
	"procmig/internal/kernel"
	"procmig/internal/sim"
)

// TestRshRelaysRemoteOutput: output the remote command writes to its pty
// comes back to the rsh caller's terminal.
func TestRshRelaysRemoteOutput(t *testing.T) {
	c := boot(t, "brick", "schooner")
	term := c.Console("brick")
	c.Eng.Go("driver", func(tk *sim.Task) {
		// Remote ps writes its table to the rsh pty; rsh copies it home.
		p, _ := c.Spawn("brick", term, user, "/bin/rsh", "schooner", "ps")
		if st := p.AwaitExit(tk); st != 0 {
			t.Errorf("rsh ps exit = %d", st)
		}
	})
	run(t, c)
	if !strings.Contains(term.Output(), "COMMAND") {
		t.Fatalf("rsh did not relay remote output: %q", term.Output())
	}
}

// TestRshToUnknownCommandFails.
func TestRshUnknownCommand(t *testing.T) {
	c := boot(t, "brick", "schooner")
	var status int
	c.Eng.Go("driver", func(tk *sim.Task) {
		p, _ := c.Spawn("brick", nil, user, "/bin/rsh", "schooner", "nosuchcmd")
		status = p.AwaitExit(tk)
	})
	run(t, c)
	if status == 0 {
		t.Fatal("rsh of a nonexistent command succeeded")
	}
}

// TestRshRunsAsRequestingUser: the remote process carries the caller's
// uid (the era's trusting .rhosts model).
func TestRshRunsAsRequestingUser(t *testing.T) {
	c := boot(t, "brick", "schooner")
	// A victim owned by another user on schooner; remote dumpproc as the
	// default user must be refused by the kill permission check.
	other := kernel.Creds{UID: 200, GID: 20, EUID: 200, EGID: 20}
	if err := c.InstallVM("/bin/hog2", cluster.HogSrc); err != nil {
		t.Fatal(err)
	}
	var victim *kernel.Proc
	var status int
	c.Eng.Go("driver", func(tk *sim.Task) {
		victim, _ = c.Spawn("schooner", nil, other, "/bin/hog2")
		tk.Sleep(sim.Second)
		p, _ := c.Spawn("brick", nil, user, "/bin/rsh", "schooner",
			"dumpproc", "-p", fmt.Sprint(victim.PID))
		status = p.AwaitExit(tk)
		c.Machine("schooner").Kill(kernel.Creds{}, victim.PID, kernel.SIGKILL)
	})
	run(t, c)
	if status == 0 {
		t.Fatal("remote dumpproc of another user's process succeeded")
	}
}

// TestFmigrateEndToEnd: the daemon-based migrate moves the counter and it
// keeps running.
func TestFmigrateEndToEnd(t *testing.T) {
	c := boot(t, "brick", "schooner", "brador")
	if err := c.InstallVM("/bin/counter", cluster.TestProgramSrc); err != nil {
		t.Fatal(err)
	}
	var status int
	c.Eng.Go("driver", func(tk *sim.Task) {
		p, _ := c.Spawn("brick", nil, user, "/bin/counter")
		tk.Sleep(2 * sim.Second)
		fm, _ := c.Spawn("brador", nil, user, "/bin/fmigrate",
			"-p", fmt.Sprint(p.PID), "-f", "brick", "-t", "schooner")
		status = fm.AwaitExit(tk)
		tk.Sleep(2 * sim.Second)
		c.Console("schooner").TypeEOF()
		// The migrated process reads from a network pty, not the console;
		// kill it to finish.
		for _, pi := range c.Machine("schooner").PS() {
			c.Machine("schooner").Kill(kernel.Creds{}, pi.PID, kernel.SIGKILL)
		}
	})
	// brador must exist for the fmigrate invocation host.
	_ = status
	run(t, c)
	if status != 0 {
		t.Fatalf("fmigrate exit = %d", status)
	}
}

// TestCkptRestoreSecondCheckpoint: restoring -n 2 resumes from the later
// snapshot.
func TestCkptRestoreSecondCheckpoint(t *testing.T) {
	c := boot(t, "brick")
	if err := c.InstallVM("/bin/counter", cluster.TestProgramSrc); err != nil {
		t.Fatal(err)
	}
	term := c.Console("brick")
	var ckStatus, rsStatus int
	c.Eng.Go("driver", func(tk *sim.Task) {
		p, _ := c.Spawn("brick", term, user, "/bin/counter")
		tk.Sleep(2 * sim.Second)
		term.Type("one\n")
		cp, _ := c.Spawn("brick", term, user, "/bin/ckpt",
			"-p", fmt.Sprint(p.PID), "-i", "5", "-n", "2", "-d", "/home/s")
		tk.Sleep(7 * sim.Second)
		term.Type("two\n") // after snapshot 1, before snapshot 2
		ckStatus = cp.AwaitExit(tk)

		// Kill the live incarnation, restore snapshot 2.
		for _, pi := range c.Machine("brick").PS() {
			if strings.Contains(pi.Cmd, "a.out") {
				c.Machine("brick").Kill(kernel.Creds{}, pi.PID, kernel.SIGKILL)
			}
		}
		tk.Sleep(sim.Second)
		rs, _ := c.Spawn("brick", term, user, "/bin/ckptrestore", "-d", "/home/s", "-n", "2")
		rsStatus = rs.AwaitExit(tk)
		tk.Sleep(2 * sim.Second)
		term.Type("three\n")
		tk.Sleep(2 * sim.Second)
		term.TypeEOF()
	})
	run(t, c)
	if ckStatus != 0 || rsStatus != 0 {
		t.Fatalf("ckpt = %d restore = %d (tty %q)", ckStatus, rsStatus, term.Output())
	}
	// Snapshot 2 had seen both "one" and "two": the restored run appends
	// "three" after them.
	data, err := c.Machine("brick").NS().ReadFile("/home/out")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "one\ntwo\nthree\n" {
		t.Fatalf("out = %q, want the second checkpoint's view + three", data)
	}
}

// TestCkptRestoreMissingCheckpoint.
func TestCkptRestoreMissingCheckpoint(t *testing.T) {
	c := boot(t, "brick")
	var status int
	c.Eng.Go("driver", func(tk *sim.Task) {
		rs, _ := c.Spawn("brick", nil, user, "/bin/ckptrestore", "-d", "/home/nowhere", "-n", "1")
		status = rs.AwaitExit(tk)
	})
	run(t, c)
	if status == 0 {
		t.Fatal("restore from a nonexistent checkpoint succeeded")
	}
}

// TestBalancerNoOpWhenBalanced: nothing moves when load is level.
func TestBalancerNoOpWhenBalanced(t *testing.T) {
	c := boot(t, "m1", "m2")
	if err := c.StartHA(ha.Config{Interval: sim.Second}); err != nil {
		t.Fatal(err)
	}
	c.Eng.Go("driver", func(tk *sim.Task) {
		h1, _ := c.Spawn("m1", nil, user, "/bin/hog")
		h2, _ := c.Spawn("m2", nil, user, "/bin/hog")
		b := &apps.Balancer{
			Host:   c.NetHost("m1"),
			View:   c.HA("m1").Members(),
			Period: 5 * sim.Second,
			MinAge: sim.Second,
		}
		tk.Sleep(6 * sim.Second)
		if b.Step(tk) {
			t.Error("balancer moved a process on level load")
		}
		h1.AwaitExit(tk)
		h2.AwaitExit(tk)
		c.StopHA()
	})
	run(t, c)
}

// TestMigrateProcFailsForBadPid.
func TestMigrateProcFailsForBadPid(t *testing.T) {
	c := boot(t, "m1", "m2")
	var err error
	c.Eng.Go("driver", func(tk *sim.Task) {
		_, err = apps.MigrateProc(tk, c.Machine("m1"), c.Machine("m2"), 31337)
	})
	run(t, c)
	if err == nil {
		t.Fatal("MigrateProc of a nonexistent pid succeeded")
	}
}
