package kernel

import "procmig/internal/sim"

// Costs is the virtual-time cost model: every constant a syscall, the
// scheduler, the disk or the dump path charges. Values are era-plausible
// for a ~1 MIPS Sun-2 with a local disk and 10 Mbit Ethernet, and are
// calibrated so the paper's four figures land near their reported ratios
// (see EXPERIMENTS.md). Absolute values are not the point; ratios are.
type Costs struct {
	// CPU.
	InstrPerUS  sim.Duration // VM instructions per microsecond (1 ≈ Sun-2)
	Quantum     sim.Duration // scheduler time slice
	SwitchCost  sim.Duration // context switch penalty
	SyscallBase sim.Duration // trap + common syscall path

	// Pathname resolution and the paper's §5.1 name tracking. Open/creat
	// pay malloc + copy (file structures use dynamically allocated
	// strings); chdir pays copy only (the u-area field is fixed size).
	NameiPerComp     sim.Duration // per path component looked up
	TrackMalloc      sim.Duration // kernel memory allocator, open/creat only
	TrackCopyBase    sim.Duration // combine-and-copy bookkeeping per update
	TrackNamePerByte sim.Duration // kernel strcpy per pathname byte
	TrackFree        sim.Duration // freeing the name on close

	// Per-syscall work beyond the base trap cost.
	OpenBase  sim.Duration
	CloseBase sim.Duration
	ChdirBase sim.Duration
	ReadBase  sim.Duration
	WriteBase sim.Duration
	StatBase  sim.Duration

	// Local disk.
	DiskLatency sim.Duration // per data-carrying operation
	DiskPerByte sim.Duration

	// Program loading.
	ExecBase    sim.Duration // execve fixed work (image setup, page maps)
	ExecPerByte sim.Duration // copying text+data in
	SpawnBase   sim.Duration // process creation (fork half of fork+exec)

	// Signals and dumping.
	SignalPost    sim.Duration // posting a signal
	SignalDeliver sim.Duration // delivering to a handler
	DumpPerByte   sim.Duration // formatting dump/core contents (CPU)
	DumpBase      sim.Duration // per dump file: headers, bookkeeping (CPU)
	DumpDisk      sim.Duration // per dump file: synchronous disk writes

	// Terminal.
	TTYPerByte sim.Duration

	// Streaming migration (the migd-to-migd pre-copy path). A chunk pays
	// a fixed protocol cost plus a per-byte copy out of the image; each
	// pre-copy round also pays a scan over the pages it considers.
	StreamChunkBase  sim.Duration // per record: header, copyout, send setup
	StreamPerByte    sim.Duration // formatting/copying streamed bytes (CPU)
	DirtyScanPerPage sim.Duration // walking the dirty set each round
	PageHashCost     sim.Duration // hashing one page for dedup/elision
	LZPageCost       sim.Duration // LZ-compressing one candidate page
	StorePageCost    sim.Duration // inserting one page into the host page store
}

// DefaultCosts returns the calibrated cost model.
func DefaultCosts() Costs {
	return Costs{
		InstrPerUS:  1,
		Quantum:     20 * sim.Millisecond,
		SwitchCost:  1500 * sim.Microsecond,
		SyscallBase: 180 * sim.Microsecond,

		NameiPerComp:     160 * sim.Microsecond,
		TrackMalloc:      137 * sim.Microsecond,
		TrackCopyBase:    192 * sim.Microsecond,
		TrackNamePerByte: 8 * sim.Microsecond,
		TrackFree:        60 * sim.Microsecond,

		OpenBase:  220 * sim.Microsecond,
		CloseBase: 120 * sim.Microsecond,
		ChdirBase: 200 * sim.Microsecond,
		ReadBase:  150 * sim.Microsecond,
		WriteBase: 150 * sim.Microsecond,
		StatBase:  150 * sim.Microsecond,

		DiskLatency: 18 * sim.Millisecond,
		DiskPerByte: 2 * sim.Microsecond,

		ExecBase:    30 * sim.Millisecond,
		ExecPerByte: 3 * sim.Microsecond,
		SpawnBase:   25 * sim.Millisecond,

		SignalPost:    120 * sim.Microsecond,
		SignalDeliver: 250 * sim.Microsecond,
		DumpPerByte:   3 * sim.Microsecond,
		DumpBase:      21 * sim.Millisecond,
		DumpDisk:      360 * sim.Millisecond,

		TTYPerByte: 30 * sim.Microsecond,

		StreamChunkBase:  250 * sim.Microsecond,
		StreamPerByte:    1 * sim.Microsecond,
		DirtyScanPerPage: 20 * sim.Microsecond,
		PageHashCost:     150 * sim.Microsecond,
		LZPageCost:       512 * sim.Microsecond,
		StorePageCost:    80 * sim.Microsecond,
	}
}

// MaxPathLen is the fixed buffer size the ablation's fixed-storage mode
// charges per tracked name (the alternative §5.1 argues against).
const MaxPathLen = 1024
