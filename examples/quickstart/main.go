// Quickstart: boot two simulated Sun workstations, run the paper's
// three-counter test program on one, migrate it to the other while it is
// blocked reading from the terminal, and watch all three counters (a
// register, a static variable and a stack variable) continue on the new
// machine while the output file keeps growing over NFS.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"procmig/internal/cluster"
	"procmig/internal/sim"
)

func main() {
	c, err := cluster.NewSimple("brick", "schooner")
	if err != nil {
		log.Fatal(err)
	}
	if err := c.InstallVM("/bin/counter", cluster.TestProgramSrc); err != nil {
		log.Fatal(err)
	}
	brick := c.Console("brick")
	schooner := c.Console("schooner")

	c.Eng.Go("user", func(tk *sim.Task) {
		// Start the test program on brick and feed it one line.
		p, err := c.Spawn("brick", nil, cluster.DefaultUser, "/bin/counter")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%v] started counter on brick as pid %d\n", sim.Duration(tk.Now()), p.PID)
		tk.Sleep(2 * sim.Second)
		brick.Type("first line\n")
		tk.Sleep(2 * sim.Second)

		// migrate -p <pid> -f brick -t schooner, typed on schooner so the
		// terminal follows the user (§4.2's recommendation).
		fmt.Printf("[%v] migrating pid %d from brick to schooner...\n", sim.Duration(tk.Now()), p.PID)
		mig, err := c.Spawn("schooner", nil, cluster.DefaultUser, "/bin/migrate",
			"-p", fmt.Sprint(p.PID), "-f", "brick", "-t", "schooner")
		if err != nil {
			log.Fatal(err)
		}
		if status := mig.AwaitExit(tk); status != 0 {
			log.Fatalf("migrate exited %d", status)
		}
		fmt.Printf("[%v] migrate finished\n", sim.Duration(tk.Now()))

		// The process now reads from schooner's terminal.
		tk.Sleep(2 * sim.Second)
		schooner.Type("second line\n")
		tk.Sleep(2 * sim.Second)
		schooner.TypeEOF() // ^D: the program exits
	})
	if err := c.Run(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n--- brick console (before migration) ---")
	fmt.Print(brick.Output())
	fmt.Println("--- schooner console (after migration) ---")
	fmt.Print(schooner.Output())

	out, err := c.Machine("brick").NS().ReadFile("/home/out")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- the output file on brick (appended across the migration via NFS) ---")
	fmt.Print(string(out))

	fmt.Println("\nNote R3 D3 S3 on schooner: the register, data-segment and stack")
	fmt.Println("counters all continued from where brick left off.")
}
