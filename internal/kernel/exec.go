package kernel

import (
	"fmt"

	"procmig/internal/aout"
	"procmig/internal/errno"
	"procmig/internal/sim"
	"procmig/internal/vfs"
	"procmig/internal/vm"
)

// SetRestProcMode sets or clears the paper's §5.2 coupling between
// rest_proc and execve: while the flag is set, execve allocates stackSize
// bytes of initial stack instead of building an argument/environment stack.
// Only the core package's rest_proc implementation uses this.
func (m *Machine) SetRestProcMode(on bool, stackSize uint32) {
	m.restProcFlag = on
	m.restProcStackSize = stackSize
}

// Execve is the exported execve(2) for kernel-adjacent code (rest_proc).
func (p *Proc) Execve(path string, args, env []string) errno.Errno {
	return p.execve(path, args, env)
}

// execve overlays the process with the executable at path. On success the
// new image (VM or hosted) is installed; the caller resumes it via
// runImage (VM processes continue their interpreter loop naturally).
func (p *Proc) execve(path string, args, env []string) errno.Errno {
	m := p.M
	startReal, startCPU := p.task.Now(), p.STime
	e := p.execveInner(path, args, env)
	m.trace(p, "execve", "%q = %v", path, e)
	m.Metrics.LastExecve = OpTiming{
		CPU:  p.STime - startCPU,
		Real: sim.Duration(p.task.Now() - startReal),
	}
	return e
}

func (p *Proc) execveInner(path string, args, env []string) errno.Errno {
	m := p.M
	p.sysCPU(m.Costs.SyscallBase + m.Costs.ExecBase)
	abs := p.abspath(path)
	p.nameiCharge(abs)

	pl, err := m.ns.Resolve(abs, true)
	if err != nil {
		return errno.Of(err)
	}
	if pl.Attr.Type != vfs.TypeFile {
		return errno.EACCES
	}
	if e := checkAccess(pl.Attr, p.Creds, 1); e != 0 { // execute bit
		return e
	}
	raw, err := pl.FS.ReadAt(pl.Node, 0, int(pl.Attr.Size))
	if err != nil {
		return errno.Of(err)
	}
	p.diskCharge(pl, len(raw))

	if aout.IsHosted(raw) {
		name, err := aout.DecodeHosted(raw)
		if err != nil {
			return errno.ENOEXEC
		}
		fn, ok := m.registry[name]
		if !ok {
			return errno.ENOEXEC
		}
		p.VM = nil
		p.hosted = fn
		p.hostedArgs = args
		p.Cmd = abs
		return 0
	}

	exe, err := aout.Decode(raw)
	if err != nil {
		return errno.ENOEXEC
	}
	if exe.ISA > m.ISA {
		return errno.ENOEXEC
	}
	p.sysCPU(sim.Duration(len(exe.Text)+len(exe.Data)) * m.Costs.ExecPerByte)

	cpu := vm.New(exe.Text, append([]byte(nil), exe.Data...), m.ISA)
	cpu.PC = exe.Entry
	if m.restProcFlag {
		// Called from rest_proc: allocate exactly the dumped process's
		// stack size; rest_proc fills in the contents and registers.
		cpu.SetStackImage(make([]byte, m.restProcStackSize))
	} else {
		setupStack(cpu, args, env)
	}
	p.VM = cpu
	p.hosted = nil
	p.ExecEntry = exe.Entry
	p.Cmd = abs
	return 0
}

// setupStack lays out the exec ABI: the environment block, then the
// argument block, both NUL-separated string sequences, pushed onto the
// stack (the paper relies on the environment living in the stack so that
// rest_proc restores it for free). Registers: r0=argc, r1=&args, r2=envc,
// r3=&env.
func setupStack(cpu *vm.CPU, args, env []string) {
	pushBlock := func(strs []string) uint32 {
		var blob []byte
		for _, s := range strs {
			blob = append(blob, s...)
			blob = append(blob, 0)
		}
		if len(blob) == 0 {
			blob = []byte{0}
		}
		sp := cpu.R[vm.RegSP] - uint32(len(blob))
		sp &^= 3 // keep word alignment
		cpu.WriteBytes(sp, blob)
		cpu.R[vm.RegSP] = sp
		return sp
	}
	envAddr := pushBlock(env)
	argAddr := pushBlock(args)
	cpu.R[0] = uint32(len(args))
	cpu.R[1] = argAddr
	cpu.R[2] = uint32(len(env))
	cpu.R[3] = envAddr
}

// fork implements fork(2) for VM processes: a child with a copy of the
// address space, shared open files, and the same signal table.
func (p *Proc) fork() (int, errno.Errno) {
	m := p.M
	if p.VM == nil {
		return -1, errno.EINVAL // hosted programs use Spawn
	}
	p.sysCPU(m.Costs.SyscallBase + m.Costs.SpawnBase)
	p.sysCPU(sim.Duration(len(p.VM.Data)+len(p.VM.Stack)) * m.Costs.ExecPerByte)

	child := m.newProc(p.Creds, p.CWD, p.TTY)
	child.PPID = p.PID
	child.Cmd = p.Cmd
	child.SigActions = p.SigActions
	child.ExecEntry = p.ExecEntry
	for i, f := range p.FDs {
		if f != nil {
			f.refs++
			child.FDs[i] = f
		}
	}
	ccpu := vm.New(p.VM.Text, append([]byte(nil), p.VM.Data...), m.ISA)
	ccpu.Restore(p.VM.Snapshot())
	ccpu.Stack = append([]byte(nil), p.VM.Stack...)
	ccpu.R[0] = 0 // fork returns 0 in the child
	ccpu.R[1] = 0
	child.VM = ccpu

	m.trace(p, "fork", "child pid %d", child.PID)
	m.eng.Go(fmt.Sprintf("%s:pid%d:%s", m.Name, child.PID, child.Cmd), func(t *sim.Task) {
		child.task = t
		child.StartedAt = t.Now()
		child.run(child.runImage)
	})
	return child.PID, 0
}

// wait implements wait(2): reap one zombie child, blocking until one
// exists. A migrated process has left its children behind (§7), so it
// gets ECHILD here — the documented "undefined results" caveat.
func (p *Proc) wait() (int, int, errno.Errno) {
	p.sysCPU(p.M.Costs.SyscallBase)
	for {
		hasChild := false
		for _, q := range p.M.procs {
			if q.PPID != p.PID || q == p {
				continue
			}
			hasChild = true
			if q.State == ProcZombie {
				q.State = ProcDead
				delete(p.M.procs, q.PID)
				status := q.ExitStatus<<8 | int(q.KilledBy)
				return q.PID, status, 0
			}
		}
		if !hasChild {
			return -1, 0, errno.ECHILD
		}
		if p.blockOn(&p.childQ) {
			return -1, 0, errno.EINTR
		}
	}
}

// writeCore writes the 4.2BSD-style core file ("dumping a subset of the
// information we dump for our new signal", §5.2) into the process's
// current directory.
func (p *Proc) writeCore() {
	if p.VM == nil {
		return
	}
	startReal, startCPU := p.task.Now(), p.STime
	core := &aout.Core{
		ISA:   p.VM.ISA,
		Entry: p.ExecEntry,
		Regs:  p.VM.Snapshot(),
		Data:  append([]byte(nil), p.VM.Data...),
		Stack: p.VM.StackImage(),
	}
	raw := core.Encode()
	p.sysCPU(p.M.Costs.DumpBase + sim.Duration(len(raw))*p.M.Costs.DumpPerByte)
	p.SleepIO(p.M.Costs.DumpDisk)
	p.WriteFileCharged(vfs.JoinPath(p.CWD, "core"), raw, 0o600)
	p.M.Metrics.LastCore = OpTiming{
		CPU:  p.STime - startCPU,
		Real: sim.Duration(p.task.Now() - startReal),
	}
}

// WriteFileCharged creates or truncates abs and writes data, charging
// namei and disk costs — a kernel-internal file write used by the dump
// paths (the files are created by the dying process itself, as with core
// dumps; dumpproc then has to wait for them, which is Figure 2's CPU/real
// gap).
func (p *Proc) WriteFileCharged(abs string, data []byte, mode uint16) errno.Errno {
	p.nameiCharge(abs)
	ns := p.M.ns
	var pl vfs.Place
	if existing, err := ns.Resolve(abs, true); err == nil {
		if existing.Attr.Type != vfs.TypeFile {
			return errno.EINVAL
		}
		if err := existing.FS.Truncate(existing.Node, 0); err != nil {
			return errno.Of(err)
		}
		pl = existing
	} else {
		dir, base, err := ns.ResolveParent(abs)
		if err != nil {
			return errno.Of(err)
		}
		node, err := dir.FS.Create(dir.Node, base, mode, p.Creds.EUID, p.Creds.EGID)
		if err != nil {
			return errno.Of(err)
		}
		attr, _ := dir.FS.Getattr(node)
		pl = vfs.Place{FS: dir.FS, Node: node, Attr: attr, Canon: dir.Canon + "/" + base}
	}
	if _, err := pl.FS.WriteAt(pl.Node, 0, data); err != nil {
		return errno.Of(err)
	}
	p.diskCharge(pl, len(data))
	return 0
}

// ReadFileCharged reads the whole file at abs, charging namei and disk
// costs — the kernel-internal read rest_proc uses for the dump files.
func (p *Proc) ReadFileCharged(abs string) ([]byte, errno.Errno) {
	p.nameiCharge(abs)
	pl, err := p.M.ns.Resolve(abs, true)
	if err != nil {
		return nil, errno.Of(err)
	}
	if pl.Attr.Type != vfs.TypeFile {
		return nil, errno.EINVAL
	}
	data, err := pl.FS.ReadAt(pl.Node, 0, int(pl.Attr.Size))
	if err != nil {
		return nil, errno.Of(err)
	}
	p.diskCharge(pl, len(data))
	return data, 0
}

// runVM is the interpreter loop for a VM process.
func (p *Proc) runVM() {
	// Execute (and charge) CPU in quantum-sized batches: smaller batches
	// would interleave with other runnable processes more often than the
	// scheduler quantum allows and pay spurious context switches.
	batch := int(p.M.Costs.Quantum * p.M.Costs.InstrPerUS / sim.Microsecond)
	if batch < 256 {
		batch = 256
	}
	cpu := p.VM
	for {
		p.deliverSignals()
		if p.VM != cpu { // image replaced (execve from VM code)
			cpu = p.VM
		}
		steps := 0
		res := vm.StepOK
		for steps < batch {
			res = cpu.Step()
			steps++
			if res != vm.StepOK {
				break
			}
		}
		p.userCPU(sim.Duration(steps) * sim.Microsecond / p.M.Costs.InstrPerUS)
		switch res {
		case vm.StepOK:
		case vm.StepHalt:
			p.die(int(cpu.R[0]), 0)
		case vm.StepSyscall:
			p.inSyscall = true
			p.syscallPC = cpu.PC - 2 // SYS is opcode + imm8
			p.vmSyscall()
			p.inSyscall = false
			if p.VM != cpu {
				cpu = p.VM
			}
		case vm.StepFault:
			p.faultSignal(cpu.Fault)
			cpu.Fault = nil
		}
	}
}

// faultSignal converts a processor fault into the corresponding signal.
func (p *Proc) faultSignal(f *vm.Fault) {
	var sig Signal
	switch f.Kind {
	case vm.FaultIllegal, vm.FaultISA:
		sig = SIGILL
	case vm.FaultDivide:
		sig = SIGFPE
	case vm.FaultMemory, vm.FaultStackLimit:
		sig = SIGSEGV
	default:
		sig = SIGILL
	}
	p.postSignal(sig)
	p.deliverSignals() // default action: die with core
	// If the signal was caught or ignored, execution resumes; for an
	// uncaught re-executing fault the handler is expected to repair state.
}
