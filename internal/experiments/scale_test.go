package experiments

import "testing"

// TestA11Smoke runs the scale scenario at CI-smoke size: enough hosts to
// be firmly in gossip mode (fanout ≪ N), small enough to finish in well
// under a second. Every A11 invariant — convergence, sub-quadratic
// traffic, wave detection and recovery, proc conservation — is asserted
// inside A11Scale itself.
func TestA11Smoke(t *testing.T) {
	r, err := A11Scale(A11Config{Hosts: 60, Procs: 600, Intervals: 24, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.GossipK >= r.Hosts-1 {
		t.Fatalf("fanout %d is full mesh at N=%d: not exercising gossip", r.GossipK, r.Hosts)
	}
	if r.Migrations == 0 {
		t.Fatalf("no churn migrations happened")
	}
	if r.ConvergedIn <= 0 {
		t.Fatalf("no convergence recorded")
	}
}

// TestA11Deterministic: the same seed gives the same virtual history —
// migrations and events are byte-for-byte replays.
func TestA11Deterministic(t *testing.T) {
	a, err := A11Scale(A11Config{Hosts: 40, Procs: 200, Intervals: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := A11Scale(A11Config{Hosts: 40, Procs: 200, Intervals: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Migrations != b.Migrations || a.Events != b.Events {
		t.Fatalf("same seed diverged: migrations %d vs %d, events %d vs %d",
			a.Migrations, b.Migrations, a.Events, b.Events)
	}
}
