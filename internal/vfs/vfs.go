// Package vfs implements the filesystem substrate: an inode-level
// filesystem interface (BaseFS), an in-memory implementation (MemFS)
// standing in for a local disk, and a per-machine Namespace that stitches
// filesystems together with mount points and performs symlink-aware path
// resolution.
//
// The symlink semantics deliberately reproduce the behaviour the paper
// describes in §4.3: an absolute symlink target is resolved against the
// root of the filesystem that contains the link. For links on the local
// disk that root is the machine's namespace (so /usr → /n/brador/usr works
// normally, mounts included), but for links read through an NFS mount the
// target lands back inside the mount — /n/classic + /n/brador/usr becomes
// /n/classic/n/brador/usr, which names an empty mount-point directory on
// classic's exported disk and fails. This is exactly why dumpproc must
// resolve symbolic links before prepending /n/<machine>.
package vfs

import (
	"sort"
	"strings"

	"procmig/internal/errno"
)

// NodeType classifies an inode.
type NodeType int

const (
	TypeFile NodeType = iota + 1
	TypeDir
	TypeSymlink
	TypeDev
)

func (t NodeType) String() string {
	switch t {
	case TypeFile:
		return "file"
	case TypeDir:
		return "dir"
	case TypeSymlink:
		return "symlink"
	case TypeDev:
		return "dev"
	default:
		return "?"
	}
}

// NodeID identifies an inode within one BaseFS.
type NodeID uint64

// DevID identifies a device driver slot on a machine (e.g. a terminal or
// the null device). The kernel maps DevIDs to drivers.
type DevID int

// Attr is the subset of inode attributes the system uses.
type Attr struct {
	Type NodeType
	Mode uint16 // permission bits, e.g. 0o644
	UID  int
	GID  int
	Size int64
	Dev  DevID // for TypeDev nodes
}

// Dirent is one directory entry.
type Dirent struct {
	Name string
	Node NodeID
	Type NodeType
}

// BaseFS is the inode-level filesystem interface. MemFS implements it
// directly; the NFS client implements it over the network.
type BaseFS interface {
	// Root returns the root directory's node.
	Root() NodeID
	// Lookup resolves name within the directory dir. It handles "." and
	// "..“ within the filesystem; crossing mount boundaries is the
	// Namespace's job.
	Lookup(dir NodeID, name string) (NodeID, Attr, error)
	// Getattr returns a node's attributes.
	Getattr(n NodeID) (Attr, error)
	// Setmode changes a node's permission bits.
	Setmode(n NodeID, mode uint16) error
	// Readlink returns a symlink's target.
	Readlink(n NodeID) (string, error)
	// Create makes a regular file in dir. EEXIST if the name is taken.
	Create(dir NodeID, name string, mode uint16, uid, gid int) (NodeID, error)
	// Mkdir makes a directory in dir.
	Mkdir(dir NodeID, name string, mode uint16, uid, gid int) (NodeID, error)
	// Symlink makes a symbolic link in dir pointing at target.
	Symlink(dir NodeID, name, target string, uid, gid int) error
	// Mknod makes a device node in dir.
	Mknod(dir NodeID, name string, dev DevID, mode uint16, uid, gid int) (NodeID, error)
	// Remove unlinks name from dir. Directories must be empty.
	Remove(dir NodeID, name string) error
	// Rename moves olddir/oldname to newdir/newname, replacing any
	// existing non-directory target.
	Rename(olddir NodeID, oldname string, newdir NodeID, newname string) error
	// ReadDir lists a directory, sorted by name.
	ReadDir(n NodeID) ([]Dirent, error)
	// ReadAt reads up to ln bytes at off from a regular file.
	ReadAt(n NodeID, off int64, ln int) ([]byte, error)
	// WriteAt writes data at off, extending the file (zero-filling any
	// gap) as needed. Returns bytes written.
	WriteAt(n NodeID, off int64, data []byte) (int, error)
	// Truncate sets a regular file's size.
	Truncate(n NodeID, size int64) error
}

// --- MemFS -----------------------------------------------------------------

type inode struct {
	attr    Attr
	data    []byte
	entries map[string]NodeID // directories
	parent  NodeID            // directories
	target  string            // symlinks
}

// MemFS is an in-memory BaseFS: one simulated local disk.
type MemFS struct {
	nodes map[NodeID]*inode
	next  NodeID
}

// NewMemFS returns a filesystem containing only a root directory owned by
// root with mode 0755.
func NewMemFS() *MemFS {
	fs := &MemFS{nodes: map[NodeID]*inode{}, next: 1}
	root := fs.alloc(Attr{Type: TypeDir, Mode: 0o755})
	fs.nodes[root].parent = root
	return fs
}

func (fs *MemFS) alloc(attr Attr) NodeID {
	id := fs.next
	fs.next++
	ino := &inode{attr: attr}
	if attr.Type == TypeDir {
		ino.entries = map[string]NodeID{}
	}
	fs.nodes[id] = ino
	return id
}

func (fs *MemFS) get(n NodeID) (*inode, error) {
	ino, ok := fs.nodes[n]
	if !ok {
		return nil, errno.ESTALE
	}
	return ino, nil
}

func (fs *MemFS) dir(n NodeID) (*inode, error) {
	ino, err := fs.get(n)
	if err != nil {
		return nil, err
	}
	if ino.attr.Type != TypeDir {
		return nil, errno.ENOTDIR
	}
	return ino, nil
}

// Root implements BaseFS.
func (fs *MemFS) Root() NodeID { return 1 }

// Lookup implements BaseFS.
func (fs *MemFS) Lookup(dir NodeID, name string) (NodeID, Attr, error) {
	d, err := fs.dir(dir)
	if err != nil {
		return 0, Attr{}, err
	}
	switch name {
	case "", ".":
		return dir, d.attr, nil
	case "..":
		p, err := fs.get(d.parent)
		if err != nil {
			return 0, Attr{}, err
		}
		return d.parent, p.attr, nil
	}
	id, ok := d.entries[name]
	if !ok {
		return 0, Attr{}, errno.ENOENT
	}
	ino, err := fs.get(id)
	if err != nil {
		return 0, Attr{}, err
	}
	return id, ino.attr, nil
}

// Getattr implements BaseFS.
func (fs *MemFS) Getattr(n NodeID) (Attr, error) {
	ino, err := fs.get(n)
	if err != nil {
		return Attr{}, err
	}
	return ino.attr, nil
}

// Setmode implements BaseFS.
func (fs *MemFS) Setmode(n NodeID, mode uint16) error {
	ino, err := fs.get(n)
	if err != nil {
		return err
	}
	ino.attr.Mode = mode & 0o7777
	return nil
}

// Readlink implements BaseFS.
func (fs *MemFS) Readlink(n NodeID) (string, error) {
	ino, err := fs.get(n)
	if err != nil {
		return "", err
	}
	if ino.attr.Type != TypeSymlink {
		return "", errno.EINVAL
	}
	return ino.target, nil
}

func (fs *MemFS) insert(dir NodeID, name string, attr Attr) (NodeID, error) {
	d, err := fs.dir(dir)
	if err != nil {
		return 0, err
	}
	if name == "" || name == "." || name == ".." || strings.Contains(name, "/") {
		return 0, errno.EINVAL
	}
	if _, ok := d.entries[name]; ok {
		return 0, errno.EEXIST
	}
	id := fs.alloc(attr)
	if attr.Type == TypeDir {
		fs.nodes[id].parent = dir
	}
	d.entries[name] = id
	return id, nil
}

// Create implements BaseFS.
func (fs *MemFS) Create(dir NodeID, name string, mode uint16, uid, gid int) (NodeID, error) {
	return fs.insert(dir, name, Attr{Type: TypeFile, Mode: mode & 0o7777, UID: uid, GID: gid})
}

// Mkdir implements BaseFS.
func (fs *MemFS) Mkdir(dir NodeID, name string, mode uint16, uid, gid int) (NodeID, error) {
	return fs.insert(dir, name, Attr{Type: TypeDir, Mode: mode & 0o7777, UID: uid, GID: gid})
}

// Symlink implements BaseFS.
func (fs *MemFS) Symlink(dir NodeID, name, target string, uid, gid int) error {
	id, err := fs.insert(dir, name, Attr{Type: TypeSymlink, Mode: 0o777, UID: uid, GID: gid})
	if err != nil {
		return err
	}
	fs.nodes[id].target = target
	fs.nodes[id].attr.Size = int64(len(target))
	return nil
}

// Mknod implements BaseFS.
func (fs *MemFS) Mknod(dir NodeID, name string, dev DevID, mode uint16, uid, gid int) (NodeID, error) {
	return fs.insert(dir, name, Attr{Type: TypeDev, Mode: mode & 0o7777, UID: uid, GID: gid, Dev: dev})
}

// Remove implements BaseFS.
func (fs *MemFS) Remove(dir NodeID, name string) error {
	d, err := fs.dir(dir)
	if err != nil {
		return err
	}
	if name == "." || name == ".." {
		return errno.EINVAL
	}
	id, ok := d.entries[name]
	if !ok {
		return errno.ENOENT
	}
	ino := fs.nodes[id]
	if ino.attr.Type == TypeDir && len(ino.entries) > 0 {
		return errno.ENOTEMPTY
	}
	delete(d.entries, name)
	delete(fs.nodes, id)
	return nil
}

// Rename implements BaseFS.
func (fs *MemFS) Rename(olddir NodeID, oldname string, newdir NodeID, newname string) error {
	od, err := fs.dir(olddir)
	if err != nil {
		return err
	}
	nd, err := fs.dir(newdir)
	if err != nil {
		return err
	}
	id, ok := od.entries[oldname]
	if !ok {
		return errno.ENOENT
	}
	if newname == "" || newname == "." || newname == ".." || strings.Contains(newname, "/") {
		return errno.EINVAL
	}
	if existing, ok := nd.entries[newname]; ok {
		if fs.nodes[existing].attr.Type == TypeDir {
			return errno.EISDIR
		}
		delete(fs.nodes, existing)
	}
	delete(od.entries, oldname)
	nd.entries[newname] = id
	if fs.nodes[id].attr.Type == TypeDir {
		fs.nodes[id].parent = newdir
	}
	return nil
}

// ReadDir implements BaseFS.
func (fs *MemFS) ReadDir(n NodeID) ([]Dirent, error) {
	d, err := fs.dir(n)
	if err != nil {
		return nil, err
	}
	out := make([]Dirent, 0, len(d.entries))
	for name, id := range d.entries {
		out = append(out, Dirent{Name: name, Node: id, Type: fs.nodes[id].attr.Type})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// ReadAt implements BaseFS.
func (fs *MemFS) ReadAt(n NodeID, off int64, ln int) ([]byte, error) {
	ino, err := fs.get(n)
	if err != nil {
		return nil, err
	}
	if ino.attr.Type == TypeDir {
		return nil, errno.EISDIR
	}
	if ino.attr.Type != TypeFile {
		return nil, errno.EINVAL
	}
	if off < 0 {
		return nil, errno.EINVAL
	}
	if off >= int64(len(ino.data)) {
		return nil, nil
	}
	end := off + int64(ln)
	if end > int64(len(ino.data)) {
		end = int64(len(ino.data))
	}
	return append([]byte(nil), ino.data[off:end]...), nil
}

// WriteAt implements BaseFS.
func (fs *MemFS) WriteAt(n NodeID, off int64, data []byte) (int, error) {
	ino, err := fs.get(n)
	if err != nil {
		return 0, err
	}
	if ino.attr.Type == TypeDir {
		return 0, errno.EISDIR
	}
	if ino.attr.Type != TypeFile {
		return 0, errno.EINVAL
	}
	if off < 0 {
		return 0, errno.EINVAL
	}
	end := off + int64(len(data))
	if end > int64(len(ino.data)) {
		grown := make([]byte, end)
		copy(grown, ino.data)
		ino.data = grown
	}
	copy(ino.data[off:], data)
	ino.attr.Size = int64(len(ino.data))
	return len(data), nil
}

// Truncate implements BaseFS.
func (fs *MemFS) Truncate(n NodeID, size int64) error {
	ino, err := fs.get(n)
	if err != nil {
		return err
	}
	if ino.attr.Type != TypeFile {
		return errno.EINVAL
	}
	if size < 0 {
		return errno.EINVAL
	}
	if size <= int64(len(ino.data)) {
		ino.data = ino.data[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, ino.data)
		ino.data = grown
	}
	ino.attr.Size = size
	return nil
}

var _ BaseFS = (*MemFS)(nil)
